// Package bots implements the computer-controlled load generators the
// paper uses for its experiments ("in order to simulate an average
// workload, we use randomly interacting, computer-controlled bots").
//
// A Bot drives one RTF client with a configurable interactivity profile:
// per-tick probabilities of issuing move and attack commands. Attack
// directions aim at entities visible in the bot's last state update, so —
// as the paper observes — higher user densities produce more actual
// interactions and therefore more forwarded inputs between replicas.
package bots

import (
	"math"
	"math/rand"

	"roia/internal/game"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
)

// Profile is a bot's interactivity level.
type Profile struct {
	// MoveProb is the per-step probability of a move command. The paper:
	// "users typically send move commands regardless of the overall user
	// number", so this is high by default.
	MoveProb float64
	// AttackProb is the per-step probability of an attack command.
	AttackProb float64
	// Speed scales move displacements.
	Speed float64
}

// DefaultProfile matches the "randomly interacting" average workload of
// Section V-A.
func DefaultProfile() Profile {
	return Profile{MoveProb: 0.9, AttackProb: 0.4, Speed: 5}
}

// PassiveProfile is a low-interactivity user (moves, rarely attacks).
func PassiveProfile() Profile {
	return Profile{MoveProb: 0.6, AttackProb: 0.05, Speed: 3}
}

// AggressiveProfile is a high-interactivity user.
func AggressiveProfile() Profile {
	return Profile{MoveProb: 0.95, AttackProb: 0.8, Speed: 5}
}

// Bot drives one client.
type Bot struct {
	c       *client.Client
	rng     *rand.Rand
	profile Profile
	sent    int
}

// New wraps a client into a bot with the given profile and seed.
func New(c *client.Client, profile Profile, seed int64) *Bot {
	return &Bot{c: c, rng: rand.New(rand.NewSource(seed)), profile: profile}
}

// Client returns the underlying client.
func (b *Bot) Client() *client.Client { return b.c }

// InputsSent reports how many commands the bot has issued.
func (b *Bot) InputsSent() int { return b.sent }

// Step polls the client and, once joined, issues this step's commands.
// Call it once per client-side tick.
func (b *Bot) Step() {
	b.c.Poll()
	if !b.c.Joined() {
		return
	}
	if b.rng.Float64() < b.profile.MoveProb {
		mv := &game.Move{
			DX: (b.rng.Float64()*2 - 1) * b.profile.Speed,
			DY: (b.rng.Float64()*2 - 1) * b.profile.Speed,
		}
		if b.c.SendInput(game.Commands.EncodeToBytes(mv)) == nil {
			b.sent++
		}
	}
	if b.rng.Float64() < b.profile.AttackProb {
		atk := b.aim()
		if b.c.SendInput(game.Commands.EncodeToBytes(atk)) == nil {
			b.sent++
		}
	}
}

// aim picks an attack direction: toward a random nearby entity when one
// is known (real interaction), otherwise a random direction. The client's
// world cache covers both update modes (full and delta).
func (b *Bot) aim() *game.Attack {
	if upd := b.c.LastUpdate(); upd != nil {
		if world := b.c.World(); len(world) > 0 {
			target := world[b.rng.Intn(len(world))]
			d := target.Pos.Sub(upd.Self.Pos)
			if d != (entity.Vec2{}) {
				return &game.Attack{DirX: d.X, DirY: d.Y}
			}
		}
	}
	ang := b.rng.Float64() * 2 * math.Pi
	return &game.Attack{DirX: math.Cos(ang), DirY: math.Sin(ang)}
}
