package rms

import (
	"testing"

	"roia/internal/model"
	"roia/internal/params"
)

// rtfModelW returns the demo model with an intra-replica parallelism
// setting, as an RMS would be configured for servers ticking with
// Parallelism = w.
func rtfModelW(t *testing.T, w int) *model.Model {
	t.Helper()
	mdl := rtfModel(t)
	mdl.Par = model.Par{Workers: w, Sigma: params.RTFDemo().Parallel.Sigma, Kappa: params.RTFDemo().Parallel.Kappa}
	return mdl
}

// The RMS consumes the model only through TickTimeUneven / Capacity /
// MaxReplicas, all of which route through the model's Par setting — so a
// parallel-ticking fleet gets higher admission and capacity ceilings with
// no change to the RMS code itself.
func TestCapacityRisesWithWorkers(t *testing.T) {
	seq := rtfModelW(t, 1)
	par := rtfModelW(t, 4)
	servers := []ServerState{{ID: "a"}, {ID: "b"}}

	nSeq, ok := Capacity(seq, servers, 0)
	if !ok {
		t.Fatal("sequential capacity unbounded")
	}
	nPar, ok := Capacity(par, servers, 0)
	if !ok {
		t.Fatal("parallel capacity unbounded")
	}
	if nPar <= nSeq {
		t.Fatalf("Capacity(w=4) = %d, want > Capacity(w=1) = %d", nPar, nSeq)
	}

	// And the w=1 model is the unmodified Eq. 1–4 capacity.
	base, _ := Capacity(rtfModel(t), servers, 0)
	if nSeq != base {
		t.Fatalf("Capacity(w=1) = %d diverges from unparameterized model %d", nSeq, base)
	}
}

func TestPlanMigrationsBudgetRisesWithWorkers(t *testing.T) {
	seq := rtfModelW(t, 1)
	par := rtfModelW(t, 4)
	// Same overload: the parallel model affords a larger per-tick migration
	// budget because each migration's serialization cost shares the tick
	// with a smaller effective workload term.
	bSeq := seq.MaxMigrationsIni(2, 260, 0, 180)
	bPar := par.MaxMigrationsIni(2, 260, 0, 180)
	if bPar < bSeq {
		t.Fatalf("x_max_ini(w=4) = %d < x_max_ini(w=1) = %d", bPar, bSeq)
	}
	if bSeq <= 0 {
		t.Fatalf("sequential migration budget %d, want > 0", bSeq)
	}
}
