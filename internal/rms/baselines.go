package rms

import "sort"

// This file implements the load-balancing baselines the paper positions
// itself against (Sections IV and VI). All of them drive the same Cluster
// interface as the model-driven Manager, so the benchmark harness can swap
// them in on identical workloads:
//
//   - StaticInterval — the "initial implementation of RTF-RMS": replica
//     changes on a fixed schedule regardless of actual server workload, and
//     full user equalization every step without migration budgets.
//   - StaticThreshold — Duong & Zhou [7]: a fixed per-server maximum user
//     count; excess users move immediately, replication triggers when every
//     server is at its cap.
//   - Proportional — Bezerra & Geyer [4]: users are allocated to
//     heterogeneous servers proportionally to each server's capacity
//     ("networking bandwidth" in [4]; machine power here), rebalanced fully
//     every step.

// StaticInterval triggers load-balancing actions in fixed intervals,
// "without taking into account the exact workload of the application
// servers" (Section IV). Every IntervalSec it adds a replica if the mean
// tick duration exceeds UpperMS, removes one if below LowerMS, and in
// between — every single step — migrates users to equalize counts with no
// regard for the migration overhead. The unbounded equalization is what
// the paper's model-driven pacing replaces.
type StaticInterval struct {
	Cluster Cluster
	// IntervalSec is the fixed action schedule (default 60).
	IntervalSec float64
	// UpperMS / LowerMS are the static tick-duration thresholds.
	UpperMS, LowerMS float64
	// MaxReplicas caps replication (0 = unlimited).
	MaxReplicas int

	lastCheck float64
	started   bool
}

// Step implements Controller.
func (c *StaticInterval) Step(now float64) []Action {
	interval := c.IntervalSec
	if interval <= 0 {
		interval = 60
	}
	var actions []Action
	servers := c.Cluster.Servers()
	var ready []ServerState
	var draining []ServerState
	provisioning := false
	for _, s := range servers {
		switch {
		case s.Ready && !s.Draining:
			ready = append(ready, s)
		case !s.Ready:
			provisioning = true
		case s.Users == 0:
			err := c.Cluster.RemoveReplica(s.ID)
			actions = append(actions, Action{Kind: ActRemove, Src: s.ID, Err: err})
		default:
			draining = append(draining, s)
		}
	}
	if len(ready) == 0 {
		return actions
	}

	// Evacuate draining servers wholesale — the static strategy knows no
	// migration budget.
	for _, d := range draining {
		per := d.Users / len(ready)
		rem := d.Users % len(ready)
		for i, target := range ready {
			k := per
			if i < rem {
				k++
			}
			if k == 0 {
				continue
			}
			if err := c.Cluster.Migrate(d.ID, target.ID, k); err == nil {
				actions = append(actions, Action{Kind: ActMigrate, Src: d.ID, Dst: target.ID, Users: k})
			}
		}
	}

	if !c.started {
		// First step: establish the schedule, but defer decisions until
		// monitoring history exists.
		c.started = true
		c.lastCheck = now
	} else if now-c.lastCheck >= interval {
		c.lastCheck = now
		mean := 0.0
		for _, s := range ready {
			mean += s.TickMS
		}
		mean /= float64(len(ready))
		switch {
		case mean > c.UpperMS && !provisioning && (c.MaxReplicas <= 0 || len(ready) < c.MaxReplicas):
			id, err := c.Cluster.AddReplica()
			actions = append(actions, Action{Kind: ActReplicate, Dst: id, Err: err})
		case mean < c.LowerMS && len(ready) > 1 && !provisioning:
			least := ready[0]
			for _, s := range ready[1:] {
				if s.Users < least.Users {
					least = s
				}
			}
			if err := c.Cluster.SetDraining(least.ID, true); err == nil {
				actions = append(actions, Action{Kind: ActDrain, Src: least.ID})
			}
		}
	}

	// Unbounded equalization every step (the paper's "user migration was
	// used in each tick to distribute users equally").
	actions = append(actions, equalize(c.Cluster, ready)...)
	return actions
}

// StaticThreshold assigns every server a fixed maximum user count
// (MaxUsersPerServer) as in [7]. Users beyond the cap migrate to the
// least-loaded server immediately; when all servers are within 90 % of the
// cap a replica is added.
type StaticThreshold struct {
	Cluster Cluster
	// MaxUsersPerServer is the static per-server cap.
	MaxUsersPerServer int
	// MaxReplicas caps replication (0 = unlimited).
	MaxReplicas int
}

// Step implements Controller.
func (c *StaticThreshold) Step(now float64) []Action {
	var actions []Action
	var ready []ServerState
	provisioning := false
	for _, s := range c.Cluster.Servers() {
		if s.Ready && !s.Draining {
			ready = append(ready, s)
		} else if !s.Ready {
			provisioning = true
		}
	}
	if len(ready) == 0 {
		return actions
	}
	cap := c.MaxUsersPerServer
	if cap <= 0 {
		cap = 100
	}
	// Scale up when the cluster nears saturation.
	total := 0
	for _, s := range ready {
		total += s.Users
	}
	if total >= int(0.9*float64(cap*len(ready))) && !provisioning &&
		(c.MaxReplicas <= 0 || len(ready) < c.MaxReplicas) {
		id, err := c.Cluster.AddReplica()
		actions = append(actions, Action{Kind: ActReplicate, Dst: id, Err: err})
	}
	// Move excess above the static cap to the least-loaded servers,
	// without any migration-rate bound.
	sort.Slice(ready, func(i, j int) bool { return ready[i].Users > ready[j].Users })
	for i := 0; i < len(ready); i++ {
		over := ready[i].Users - cap
		for j := len(ready) - 1; over > 0 && j > i; j-- {
			room := cap - ready[j].Users
			if room <= 0 {
				continue
			}
			k := over
			if k > room {
				k = room
			}
			if err := c.Cluster.Migrate(ready[i].ID, ready[j].ID, k); err == nil {
				actions = append(actions, Action{Kind: ActMigrate, Src: ready[i].ID, Dst: ready[j].ID, Users: k})
				ready[i].Users -= k
				ready[j].Users += k
				over -= k
			}
		}
	}
	return actions
}

// Proportional rebalances users proportionally to each server's power, as
// in the bandwidth-proportional allocation of [4], with no migration-rate
// bound and no replica-set changes (it manages a fixed heterogeneous set).
type Proportional struct {
	Cluster Cluster
}

// Step implements Controller.
func (c *Proportional) Step(now float64) []Action {
	var ready []ServerState
	for _, s := range c.Cluster.Servers() {
		if s.Ready && !s.Draining {
			ready = append(ready, s)
		}
	}
	if len(ready) < 2 {
		return nil
	}
	total := 0
	power := 0.0
	for _, s := range ready {
		total += s.Users
		power += s.Power
	}
	if power <= 0 {
		return nil
	}
	// Target share per server, largest remainder to the most powerful.
	targets := make([]int, len(ready))
	assigned := 0
	for i, s := range ready {
		targets[i] = int(float64(total) * s.Power / power)
		assigned += targets[i]
	}
	order := make([]int, len(ready))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ready[order[a]].Power > ready[order[b]].Power })
	for i := 0; assigned < total; i = (i + 1) % len(order) {
		targets[order[i]]++
		assigned++
	}
	return rebalanceToTargets(c.Cluster, ready, targets)
}

// equalize fully balances user counts across the given servers (no
// budgets), the behaviour of the initial RTF-RMS implementation.
func equalize(cluster Cluster, ready []ServerState) []Action {
	targets := make([]int, len(ready))
	total := 0
	for _, s := range ready {
		total += s.Users
	}
	base, rem := total/len(ready), total%len(ready)
	for i := range targets {
		targets[i] = base
		if i < rem {
			targets[i]++
		}
	}
	return rebalanceToTargets(cluster, ready, targets)
}

// rebalanceToTargets emits the migrations that move the servers from their
// current user counts to the target allocation.
func rebalanceToTargets(cluster Cluster, ready []ServerState, targets []int) []Action {
	type delta struct {
		id   string
		diff int // positive: surplus to shed
	}
	var surpluses, deficits []delta
	for i, s := range ready {
		d := s.Users - targets[i]
		switch {
		case d > 0:
			surpluses = append(surpluses, delta{s.ID, d})
		case d < 0:
			deficits = append(deficits, delta{s.ID, -d})
		}
	}
	sort.Slice(surpluses, func(i, j int) bool { return surpluses[i].id < surpluses[j].id })
	sort.Slice(deficits, func(i, j int) bool { return deficits[i].id < deficits[j].id })
	var actions []Action
	di := 0
	for _, s := range surpluses {
		for s.diff > 0 && di < len(deficits) {
			k := s.diff
			if k > deficits[di].diff {
				k = deficits[di].diff
			}
			if err := cluster.Migrate(s.id, deficits[di].id, k); err == nil {
				actions = append(actions, Action{Kind: ActMigrate, Src: s.id, Dst: deficits[di].id, Users: k})
			}
			s.diff -= k
			deficits[di].diff -= k
			if deficits[di].diff == 0 {
				di++
			}
		}
	}
	return actions
}
