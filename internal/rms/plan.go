package rms

import (
	"sort"

	"roia/internal/model"
)

// Migration is one planned user transfer.
type Migration struct {
	From, To string
	Count    int
}

// Targets computes the per-server target user allocation: each server's
// share of the n users proportional to its resource power, distributed by
// largest remainder (deterministic: ties resolved toward more powerful,
// then lexicographically smaller servers). For a homogeneous replica
// group this reduces to the plain average of the paper's Listing 1; after
// resource substitution the fleet is heterogeneous and stronger machines
// take proportionally more users — the allocation principle of Bezerra &
// Geyer [4] applied to machine power.
func Targets(servers []ServerState, n int) map[string]int {
	targets := make(map[string]int, len(servers))
	if len(servers) == 0 {
		return targets
	}
	totalPower := 0.0
	for _, s := range servers {
		targets[s.ID] = 0
		totalPower += power(s)
	}
	if totalPower <= 0 {
		return targets
	}
	type rem struct {
		id   string
		pow  float64
		frac float64
	}
	assigned := 0
	rems := make([]rem, 0, len(servers))
	for _, s := range servers {
		exact := float64(n) * power(s) / totalPower
		base := int(exact)
		targets[s.ID] = base
		assigned += base
		rems = append(rems, rem{id: s.ID, pow: power(s), frac: exact - float64(base)})
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		if rems[i].pow != rems[j].pow {
			return rems[i].pow > rems[j].pow
		}
		return rems[i].id < rems[j].id
	})
	for i := 0; assigned < n; i = (i + 1) % len(rems) {
		targets[rems[i].id]++
		assigned++
	}
	return targets
}

func power(s ServerState) float64 {
	if s.Power <= 0 {
		return 1
	}
	return s.Power
}

// Capacity returns the maximum zone user count the given replica group
// can serve with every server's tick below U, assuming the power-weighted
// allocation of Targets and scaling each server's Eq. (4) tick time by its
// resource power. For a homogeneous power-1 group this equals Eq. (2)'s
// n_max(l) (up to integer rounding of the shares); after resource
// substitution it credits the stronger machines — the "modern server
// hardware" extension of the paper's future work. ok is false if the
// group serves the model's entire search cap.
func Capacity(mdl *model.Model, servers []ServerState, m int) (int, bool) {
	l := len(servers)
	if l == 0 {
		return 0, false
	}
	fits := func(n int) bool {
		targets := Targets(servers, n)
		for _, s := range servers {
			if mdl.TickTimeUneven(l, n, m, targets[s.ID])/power(s) >= mdl.U {
				return false
			}
		}
		return true
	}
	cap := mdl.UserCap
	if cap <= 0 {
		cap = model.DefaultUserCap
	}
	if fits(cap) {
		return cap, false
	}
	lo, hi := 0, cap // invariant: fits(lo), !fits(hi)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// PlanMigrations implements Listing 1 of the paper: workload-aware user
// migration from the most loaded replica toward the target allocation,
// bounded by the scalability model's thresholds.
//
// For the zone's n users and m NPCs on the given replicas it:
//
//	(i)   computes each server's deviation from its target share
//	      (the plain average for homogeneous fleets, power-weighted after
//	      resource substitution),
//	(ii)  computes x_max_ini for the server s_max with the highest
//	      surplus (Eq. 5 over Eq. 4's tick time at s_max's active count),
//	(iii) computes x_max_rcv for every under-target server,
//
// and plans min{d[i], x_max_rcv[i], remaining ini budget} migrations from
// s_max to each, never moving s_max below its own target. The total
// planned count is a per-second migration rate; the caller applies one
// plan per second.
//
// Two engineering extensions beyond the paper's pseudocode (documented in
// DESIGN.md §7):
//
//   - overload recovery: Eq. (5) yields a zero budget once a server
//     already violates U, yet migration is then the only path back below
//     the threshold. An overloaded source budgets as if it were at its
//     target load; if even that is zero (the whole group violates), the
//     plan moves at full surplus speed — quality of experience is already
//     violated everywhere and convergence dominates;
//   - a receiver that is itself past U (same situation) accepts up to its
//     deficit instead of Eq. (5)'s zero.
//
// Servers still provisioning or draining must be filtered out by the
// caller. The input slice is not modified.
func PlanMigrations(mdl *model.Model, servers []ServerState, n, m int) []Migration {
	if len(servers) < 2 {
		return nil
	}
	l := len(servers)
	targets := Targets(servers, n)

	// (i) + s_max: highest surplus, ties broken by ID for determinism.
	srv := append([]ServerState(nil), servers...)
	surplusOf := func(s ServerState) int { return s.Users - targets[s.ID] }
	sort.Slice(srv, func(i, j int) bool {
		si, sj := surplusOf(srv[i]), surplusOf(srv[j])
		if si != sj {
			return si > sj
		}
		return srv[i].ID < srv[j].ID
	})
	smax := srv[0]
	surplus := surplusOf(smax)
	if surplus <= 0 {
		return nil
	}

	// (ii) budget of the initiator, with the overload recovery ladder. The
	// ladder engages only when the source actually violates U — a zero
	// budget on a server that is merely near the threshold means exactly
	// what Eq. (5) says: this second has no migration headroom.
	budget := mdl.MaxMigrationsIni(l, n, m, smax.Users)
	if budget <= 0 {
		if mdl.TickTimeUneven(l, n, m, smax.Users) < mdl.U {
			return nil
		}
		budget = mdl.MaxMigrationsIni(l, n, m, targets[smax.ID])
		if budget <= 0 {
			budget = surplus // full-group overload: converge at full speed
		}
	}
	if budget > surplus {
		budget = surplus
	}

	// (iii) fill the most underloaded servers first.
	order := append([]ServerState(nil), srv[1:]...)
	sort.Slice(order, func(i, j int) bool {
		di, dj := targets[order[i].ID]-order[i].Users, targets[order[j].ID]-order[j].Users
		if di != dj {
			return di > dj
		}
		return order[i].ID < order[j].ID
	})
	var plan []Migration
	for _, s := range order {
		if budget <= 0 {
			break
		}
		d := targets[s.ID] - s.Users
		if d <= 0 {
			continue
		}
		k := d
		rcv := mdl.MaxMigrationsRcv(l, n, m, s.Users)
		if rcv <= 0 && mdl.TickTimeUneven(l, n, m, s.Users) >= mdl.U {
			rcv = d // receiver already violating: accept the deficit
		}
		if k > rcv {
			k = rcv
		}
		if k > budget {
			k = budget
		}
		if k <= 0 {
			continue
		}
		plan = append(plan, Migration{From: smax.ID, To: s.ID, Count: k})
		budget -= k
	}
	return plan
}

// PlanDrain plans the evacuation of one server (for resource removal and
// substitution): its users move to the remaining replicas, bounded by the
// drain source's x_max_ini and each target's x_max_rcv, filling the
// targets with the most headroom (relative to their power-weighted share)
// first. Both removal and substitution "also involve user migration"
// (Section IV), so they respect the same model thresholds — with the same
// overload-recovery ladder as PlanMigrations, since a drain ordered while
// the group violates U (the substitution-under-pressure case) must still
// make progress.
func PlanDrain(mdl *model.Model, servers []ServerState, drainID string, n, m int) []Migration {
	l := len(servers)
	if l < 2 {
		return nil
	}
	var src *ServerState
	targets := make([]ServerState, 0, l-1)
	for i := range servers {
		if servers[i].ID == drainID {
			src = &servers[i]
		} else {
			targets = append(targets, servers[i])
		}
	}
	if src == nil || src.Users == 0 {
		return nil
	}
	shares := Targets(targets, n)

	budget := mdl.MaxMigrationsIni(l, n, m, src.Users)
	if budget <= 0 {
		// Recovery ladder, gated on actual overload as in PlanMigrations:
		// a near-threshold drain source simply pauses for this second.
		if mdl.TickTimeUneven(l, n, m, src.Users) < mdl.U {
			return nil
		}
		budget = mdl.MaxMigrationsIni(l, n, m, n/l)
		if budget <= 0 {
			budget = src.Users // full-group overload: evacuate at full speed
		}
	}
	if budget > src.Users {
		budget = src.Users
	}

	sort.Slice(targets, func(i, j int) bool {
		hi := shares[targets[i].ID] - targets[i].Users
		hj := shares[targets[j].ID] - targets[j].Users
		if hi != hj {
			return hi > hj
		}
		return targets[i].ID < targets[j].ID
	})
	var plan []Migration
	for ti := 0; budget > 0 && ti < len(targets); ti++ {
		t := targets[ti]
		k := mdl.MaxMigrationsRcv(l, n, m, t.Users)
		if k <= 0 && mdl.TickTimeUneven(l, n, m, t.Users) >= mdl.U {
			// Receiver violating anyway: take a proportional share.
			k = (budget + len(targets) - 1) / len(targets)
		}
		if k > budget {
			k = budget
		}
		if k <= 0 {
			continue
		}
		plan = append(plan, Migration{From: drainID, To: t.ID, Count: k})
		budget -= k
	}
	return plan
}
