package rms

import "roia/internal/model"

// Admission is a login queue driven by the scalability model: arrivals are
// admitted only while the zone has capacity headroom, and queue otherwise
// — the operational complement to the load-balancing actions. Replication
// enactment takes a provisioning delay; during a flash crowd the paper's
// 80 % trigger alone cannot prevent the population from blowing past
// n_max before the new replica is ready. An admission queue absorbs the
// burst: quality of experience is preserved for everyone inside, and the
// queue drains as capacity arrives.
type Admission struct {
	// Model is the calibrated scalability model.
	Model *model.Model
	// AdmitFraction is the share of the group's power-aware capacity the
	// admitted population may occupy (default 0.95 — slightly above the
	// 80 % replication trigger, so scaling starts before the doors close).
	AdmitFraction float64

	queued int
}

// NewAdmission returns an admission controller. It panics on a nil model
// (static wiring error).
func NewAdmission(mdl *model.Model) *Admission {
	if mdl == nil {
		panic("rms: Admission needs a model")
	}
	return &Admission{Model: mdl, AdmitFraction: 0.95}
}

// Queued reports the current login-queue length.
func (a *Admission) Queued() int { return a.queued }

// Step enqueues this second's arrivals and returns how many users (queued
// first, then fresh arrivals) may be admitted given the ready replica
// group, the current zone population n and NPC count m.
//
// The admission predicate evaluates Eq. (4) per server at the group's
// CURRENT distribution — not the balanced target — because admitting x
// users raises the zone-wide n, and with it every server's per-user cost,
// even on servers that receive none of the arrivals. x users are
// admissible when every server's predicted tick (with the arrivals landing
// on the least-loaded replica, the usual lobby policy) stays below
// AdmitFraction·U.
func (a *Admission) Step(servers []ServerState, n, m, arrivals int) (admit int) {
	if arrivals < 0 {
		arrivals = 0
	}
	a.queued += arrivals
	if a.queued == 0 {
		return 0
	}
	var ready []ServerState
	for _, s := range servers {
		if s.Ready && !s.Draining {
			ready = append(ready, s)
		}
	}
	l := len(ready)
	if l == 0 {
		return 0
	}
	frac := a.AdmitFraction
	if frac <= 0 || frac > 1 {
		frac = 0.95
	}
	limit := frac * a.Model.U
	sink := 0
	for i, s := range ready {
		if s.Users < ready[sink].Users {
			sink = i
		}
		_ = i
	}
	fits := func(x int) bool {
		nn := n + x
		for i, s := range ready {
			active := s.Users
			if i == sink {
				active += x
			}
			if a.Model.TickTimeUneven(l, nn, m, active)/power(s) >= limit {
				return false
			}
		}
		return true
	}
	if !fits(0) {
		return 0 // already beyond the margin: nobody enters
	}
	// Binary search the largest admissible count within the queue.
	lo, hi := 0, a.queued // invariant: fits(lo); hi may or may not fit
	if fits(hi) {
		lo = hi
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	a.queued -= lo
	return lo
}

// Abandon removes users from the queue (players giving up), never going
// below zero. It reports how many actually left.
func (a *Admission) Abandon(count int) int {
	if count <= 0 {
		return 0
	}
	if count > a.queued {
		count = a.queued
	}
	a.queued -= count
	return count
}
