package rms

import (
	"sort"

	"roia/internal/rtf/zone"
)

// Coordinator drives one Manager per zone of a multi-zone world. The
// paper's RTF-RMS makes its decisions per zone ("for each zone, RTF-RMS
// determines one server s_max ..."); Coordinator is the thin layer that
// iterates the zones in deterministic order and aggregates the actions.
// Users crossing zone boundaries are handled below the coordinator, by
// the servers' zone handoff (server.Config.World).
type Coordinator struct {
	managers map[zone.ID]*Manager
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{managers: make(map[zone.ID]*Manager)}
}

// Add registers the manager responsible for a zone, replacing any
// previous one. The manager's audit records are tagged with the zone, so
// one shared decision log stays attributable when several zones write
// to it.
func (c *Coordinator) Add(z zone.ID, mgr *Manager) {
	mgr.SetZone(uint32(z))
	c.managers[z] = mgr
}

// Manager returns the manager of a zone.
func (c *Coordinator) Manager(z zone.ID) (*Manager, bool) {
	m, ok := c.managers[z]
	return m, ok
}

// Zones returns the managed zones in ascending order.
func (c *Coordinator) Zones() []zone.ID {
	out := make([]zone.ID, 0, len(c.managers))
	for z := range c.managers {
		out = append(out, z)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Step runs one control-loop iteration on every zone and returns the
// actions per zone.
func (c *Coordinator) Step(now float64) map[zone.ID][]Action {
	out := make(map[zone.ID][]Action, len(c.managers))
	for _, z := range c.Zones() {
		if actions := c.managers[z].Step(now); len(actions) > 0 {
			out[z] = actions
		}
	}
	return out
}
