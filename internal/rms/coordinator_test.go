package rms

import (
	"testing"

	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

func TestCoordinatorStepsAllZonesInOrder(t *testing.T) {
	mdl := rtfModel(t)
	// Zone 7 is overloaded (triggers replication), zone 3 is imbalanced
	// (triggers migration).
	fcHot := &fakeCluster{servers: []ServerState{{ID: "h1", Users: 200, Power: 1, Ready: true}}}
	fcSkew := &fakeCluster{servers: []ServerState{
		{ID: "k1", Users: 100, Power: 1, Ready: true},
		{ID: "k2", Users: 20, Power: 1, Ready: true},
	}}
	co := NewCoordinator()
	co.Add(7, NewManager(fcHot, Config{Model: mdl}))
	co.Add(3, NewManager(fcSkew, Config{Model: mdl}))

	if got := co.Zones(); len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("zones = %v", got)
	}
	actions := co.Step(0)
	if !hasKind(actions[7], ActReplicate) {
		t.Fatalf("hot zone not replicated: %v", kinds(actions[7]))
	}
	if !hasKind(actions[3], ActMigrate) {
		t.Fatalf("skewed zone not balanced: %v", kinds(actions[3]))
	}
	if fcHot.addCalls != 1 {
		t.Fatalf("hot zone addCalls = %d", fcHot.addCalls)
	}
	if len(fcSkew.migrations) == 0 {
		t.Fatal("skewed zone saw no migrations")
	}
}

func TestCoordinatorManagerLookupAndReplace(t *testing.T) {
	mdl := rtfModel(t)
	co := NewCoordinator()
	if _, ok := co.Manager(1); ok {
		t.Fatal("manager found in empty coordinator")
	}
	m1 := NewManager(&fakeCluster{}, Config{Model: mdl})
	m2 := NewManager(&fakeCluster{}, Config{Model: mdl})
	co.Add(1, m1)
	co.Add(1, m2) // replace
	got, ok := co.Manager(1)
	if !ok || got != m2 {
		t.Fatal("replacement manager not installed")
	}
}

func TestCoordinatorQuietZonesProduceNoEntries(t *testing.T) {
	mdl := rtfModel(t)
	quiet := &fakeCluster{servers: []ServerState{{ID: "q1", Users: 10, Power: 1, Ready: true}}}
	co := NewCoordinator()
	co.Add(zone.ID(5), NewManager(quiet, Config{Model: mdl}))
	if actions := co.Step(0); len(actions) != 0 {
		t.Fatalf("quiet zone produced actions: %v", actions)
	}
}

func TestCoordinatorTagsAuditRecordsWithZone(t *testing.T) {
	// Two zone managers sharing one audit sink: every record must carry
	// the zone of the manager that produced it.
	mdl := rtfModel(t)
	sink := &telemetry.MemorySink{}
	fcHot := &fakeCluster{servers: []ServerState{{ID: "h1", Users: 200, Power: 1, Ready: true}}}
	fcQuiet := &fakeCluster{servers: []ServerState{{ID: "q1", Users: 10, Power: 1, Ready: true}}}
	co := NewCoordinator()
	co.Add(7, NewManager(fcHot, Config{Model: mdl, Audit: sink}))
	co.Add(3, NewManager(fcQuiet, Config{Model: mdl, Audit: sink}))
	co.Step(0)

	records := sink.Snapshot()
	if len(records) != 2 {
		t.Fatalf("records = %d, want one per zone", len(records))
	}
	zones := make(map[uint32]int)
	for _, rec := range records {
		zones[rec.Zone]++
		if rec.Zone != 3 && rec.Zone != 7 {
			t.Fatalf("record tagged with unknown zone %d", rec.Zone)
		}
		if rec.Zone == 7 && len(rec.Actions) == 0 {
			t.Fatal("hot zone record lost its actions")
		}
	}
	if zones[3] != 1 || zones[7] != 1 {
		t.Fatalf("zone tags = %v, want one record each for zones 3 and 7", zones)
	}
}

func TestManagerWithoutCoordinatorLeavesZoneUntagged(t *testing.T) {
	mdl := rtfModel(t)
	sink := &telemetry.MemorySink{}
	mgr := NewManager(&fakeCluster{servers: []ServerState{{ID: "s1", Users: 10, Power: 1, Ready: true}}},
		Config{Model: mdl, Audit: sink})
	mgr.Step(0)
	if recs := sink.Snapshot(); len(recs) != 1 || recs[0].Zone != 0 {
		t.Fatalf("records = %+v, want one untagged record", recs)
	}
}
