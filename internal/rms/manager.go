package rms

import (
	"fmt"
	"math"
	"sort"

	"roia/internal/model"
	"roia/internal/telemetry"
)

// Config tunes the model-driven Manager.
type Config struct {
	// Model is the calibrated scalability model.
	Model *model.Model
	// TriggerFraction is the share of n_max(l) at which replication is
	// enacted; default model.DefaultTriggerFraction (the 80 % rule).
	TriggerFraction float64
	// RemoveHeadroom guards resource removal: a replica is drained only
	// when n is below RemoveHeadroom × the (l−1)-replica trigger, so the
	// shrunken cluster retains margin before it would have to scale right
	// back up. Default 0.9.
	RemoveHeadroom float64
	// MaxReplicas overrides the model's l_max when positive.
	MaxReplicas int
	// CooldownSec is the minimum time between replica-set changes.
	// Default 15 s.
	CooldownSec float64
	// UnpacedMigrations disables the Eq. (5) migration budgets: plans move
	// the full surplus immediately, as the paper's predecessor model [15]
	// (which "does not address the additional workload caused by user
	// migration") would. Ablation switch — benches use it to quantify what
	// the paper's migration-overhead terms buy.
	UnpacedMigrations bool
	// Audit, when set, receives one telemetry.DecisionRecord per Step
	// capturing the decision inputs (n, m, l, per-server states), the model
	// thresholds that gated the choice (n_max, trigger, l_max, headroom)
	// and every action with its reason — the machine-readable "why" of the
	// controller. Typically a telemetry.AuditLog writing JSONL.
	Audit telemetry.DecisionSink
}

func (c Config) withDefaults() Config {
	if c.TriggerFraction <= 0 || c.TriggerFraction > 1 {
		c.TriggerFraction = model.DefaultTriggerFraction
	}
	if c.RemoveHeadroom <= 0 || c.RemoveHeadroom > 1 {
		c.RemoveHeadroom = 0.9
	}
	if c.CooldownSec <= 0 {
		c.CooldownSec = 15
	}
	return c
}

// Manager is the model-driven RTF-RMS controller for one zone.
type Manager struct {
	cluster Cluster
	cfg     Config

	// zone tags audit records in multi-zone deployments (see SetZone).
	zone uint32

	lastScale float64
	// pendingSubs maps a provisioning replacement server to the server it
	// substitutes; the old server drains once the replacement is ready.
	pendingSubs map[string]string
}

// NewManager returns a Manager driving the cluster with the given
// configuration. It panics if cfg.Model is nil (static wiring error).
func NewManager(cluster Cluster, cfg Config) *Manager {
	if cfg.Model == nil {
		panic("rms: Config.Model must be set")
	}
	return &Manager{
		cluster:     cluster,
		cfg:         cfg.withDefaults(),
		lastScale:   math.Inf(-1),
		pendingSubs: make(map[string]string),
	}
}

// SetZone tags the manager's audit records with the zone it is responsible
// for, so a shared multi-zone decision log stays attributable per zone.
// Coordinator.Add calls it automatically. Call before the first Step.
func (mgr *Manager) SetZone(z uint32) { mgr.zone = z }

// MaxReplicas returns the effective replica cap: the configuration
// override or the model's l_max (Eq. 3).
func (mgr *Manager) MaxReplicas(m int) int {
	if mgr.cfg.MaxReplicas > 0 {
		return mgr.cfg.MaxReplicas
	}
	lmax, _ := mgr.cfg.Model.MaxReplicas(m)
	return lmax
}

// Step implements Controller: one control-loop iteration. Call it once
// per second of session time. When Config.Audit is set, every step emits
// one telemetry.DecisionRecord with the inputs, thresholds and actions.
func (mgr *Manager) Step(now float64) []Action {
	var rec *telemetry.DecisionRecord
	if mgr.cfg.Audit != nil {
		rec = &telemetry.DecisionRecord{
			Time:            now,
			Zone:            mgr.zone,
			TriggerFraction: mgr.cfg.TriggerFraction,
			RemoveHeadroom:  mgr.cfg.RemoveHeadroom,
		}
	}
	actions := mgr.step(now, rec)
	if rec != nil {
		mgr.cfg.Audit.Record(*rec)
	}
	return actions
}

// note mirrors an action into the audit record (when auditing is on) with
// the reason the controller chose it, and passes the action through.
func note(rec *telemetry.DecisionRecord, a Action, reason string) Action {
	if rec != nil {
		aa := telemetry.AuditAction{
			Kind: a.Kind.String(), Src: a.Src, Dst: a.Dst, Users: a.Users, Reason: reason,
		}
		if a.Err != nil {
			aa.Err = a.Err.Error()
		}
		rec.Actions = append(rec.Actions, aa)
	}
	return a
}

// noteMigration is note for migration actions, additionally capturing the
// Eq. (5) budgets of both endpoints at decision time.
func (mgr *Manager) noteMigration(rec *telemetry.DecisionRecord, a Action, reason string, l, n, m int, users map[string]int) Action {
	if rec != nil {
		aa := telemetry.AuditAction{
			Kind: a.Kind.String(), Src: a.Src, Dst: a.Dst, Users: a.Users, Reason: reason,
			XMaxIni: mgr.cfg.Model.MaxMigrationsIni(l, n, m, users[a.Src]),
			XMaxRcv: mgr.cfg.Model.MaxMigrationsRcv(l, n, m, users[a.Dst]),
		}
		if a.Err != nil {
			aa.Err = a.Err.Error()
		}
		rec.Actions = append(rec.Actions, aa)
	}
	return a
}

// snapshotServers mirrors the cluster state into the audit record.
func snapshotServers(rec *telemetry.DecisionRecord, servers []ServerState) {
	if rec == nil {
		return
	}
	rec.Servers = make([]telemetry.ServerSnapshot, len(servers))
	for i, s := range servers {
		rec.Servers[i] = telemetry.ServerSnapshot{
			ID: s.ID, Users: s.Users, TickMS: s.TickMS, Power: s.Power,
			Class: s.Class, Ready: s.Ready, Draining: s.Draining,
		}
	}
}

func (mgr *Manager) step(now float64, rec *telemetry.DecisionRecord) []Action {
	var actions []Action
	servers := mgr.cluster.Servers()
	n := mgr.cluster.ZoneUsers()
	m := mgr.cluster.NPCCount()
	if rec != nil {
		rec.Users, rec.NPCs = n, m
	}
	snapshotServers(rec, servers)

	// Activate pending substitutions whose replacement became ready. Keys
	// are walked in sorted order so the action list and the audit record
	// stay deterministic when several substitutions complete on one step.
	pending := make([]string, 0, len(mgr.pendingSubs))
	for newID := range mgr.pendingSubs {
		pending = append(pending, newID)
	}
	sort.Strings(pending)
	for _, newID := range pending {
		oldID := mgr.pendingSubs[newID]
		for _, s := range servers {
			if s.ID == newID && s.Ready {
				if err := mgr.cluster.SetDraining(oldID, true); err == nil {
					actions = append(actions, note(rec, Action{Kind: ActDrain, Src: oldID},
						fmt.Sprintf("replacement %s ready; draining substituted server", newID)))
				}
				delete(mgr.pendingSubs, newID)
			}
		}
	}
	if len(actions) > 0 {
		servers = mgr.cluster.Servers() // re-snapshot after drains started
		snapshotServers(rec, servers)
	}

	// Finish drains: empty draining servers are removed.
	for _, s := range servers {
		if s.Draining && s.Users == 0 {
			err := mgr.cluster.RemoveReplica(s.ID)
			actions = append(actions, note(rec, Action{Kind: ActRemove, Src: s.ID, Err: err},
				"draining server empty; releasing resource"))
		}
	}

	servers = mgr.cluster.Servers()
	var ready, draining []ServerState
	provisioning := false
	for _, s := range servers {
		switch {
		case !s.Ready:
			provisioning = true
		case s.Draining:
			draining = append(draining, s)
		default:
			ready = append(ready, s)
		}
	}
	l := len(ready)
	if rec != nil {
		rec.Replicas = l
	}
	if l == 0 {
		return actions
	}

	settled := !provisioning && len(draining) == 0 && now-mgr.lastScale >= mgr.cfg.CooldownSec
	// Power-aware capacity: equals the model's n_max(l) for a homogeneous
	// baseline fleet and credits stronger machines after substitution.
	nmax, _ := Capacity(mgr.cfg.Model, ready, m)
	trigger := model.ReplicationTrigger(nmax, mgr.cfg.TriggerFraction)
	lmax := mgr.MaxReplicas(m)
	if rec != nil {
		rec.NMax, rec.Trigger, rec.LMax, rec.Settled = nmax, trigger, lmax, settled
	}

	switch {
	// Replication enactment / resource substitution (scale up).
	case n >= trigger && settled:
		if l < lmax {
			id, err := mgr.cluster.AddReplica()
			actions = append(actions, note(rec, Action{Kind: ActReplicate, Dst: id, Err: err},
				fmt.Sprintf("n=%d >= trigger=%d (%.0f%% of n_max=%d) and l=%d < l_max=%d",
					n, trigger, mgr.cfg.TriggerFraction*100, nmax, l, lmax)))
			if err == nil {
				mgr.lastScale = now
			}
		} else {
			target := pickSubstitutionTarget(ready)
			newID, err := mgr.cluster.Substitute(target.ID)
			if err != nil {
				actions = append(actions, note(rec, Action{Kind: ActSaturated, Src: target.ID, Err: err},
					fmt.Sprintf("n=%d >= trigger=%d at l=l_max=%d and no stronger resource class exists", n, trigger, lmax)))
				// Nothing stronger exists; re-alerting every step is
				// noise, so back off for a cooldown period.
				mgr.lastScale = now
			} else {
				actions = append(actions, note(rec, Action{Kind: ActSubstitute, Src: target.ID, Dst: newID},
					fmt.Sprintf("n=%d >= trigger=%d at l=l_max=%d; substituting weakest server", n, trigger, lmax)))
				mgr.pendingSubs[newID] = target.ID
				mgr.lastScale = now
			}
		}

	// Resource removal (scale down).
	case l > 1 && settled:
		least := ready[0]
		for _, s := range ready[1:] {
			if s.Users < least.Users || (s.Users == least.Users && s.ID < least.ID) {
				least = s
			}
		}
		remaining := make([]ServerState, 0, l-1)
		for _, s := range ready {
			if s.ID != least.ID {
				remaining = append(remaining, s)
			}
		}
		nmaxPrev, _ := Capacity(mgr.cfg.Model, remaining, m)
		triggerPrev := model.ReplicationTrigger(nmaxPrev, mgr.cfg.TriggerFraction)
		if float64(n) < mgr.cfg.RemoveHeadroom*float64(triggerPrev) {
			if err := mgr.cluster.SetDraining(least.ID, true); err == nil {
				actions = append(actions, note(rec, Action{Kind: ActDrain, Src: least.ID},
					fmt.Sprintf("n=%d < %.2f x trigger(l-1)=%d (n_max(l-1)=%d, l_max=%d); draining least-loaded server",
						n, mgr.cfg.RemoveHeadroom, triggerPrev, nmaxPrev, lmax)))
				mgr.lastScale = now
			}
		}
	}

	// User migration, bounded by the model's per-second thresholds.
	// RTF-RMS "must consider the overall number of concurrent user
	// migrations" (Section IV): each server participates in at most one
	// plan per step, so per-server migration charges never stack beyond
	// the Eq. (5) budgets. Draining servers are evacuated first — one per
	// step — and Listing-1 balancing runs only in drain-free steps.
	if len(draining) > 0 {
		d := draining[0]
		group := append(append([]ServerState(nil), ready...), d)
		plan := PlanDrain(mgr.cfg.Model, group, d.ID, n, m)
		if mgr.cfg.UnpacedMigrations {
			plan = unpacedDrain(group, d.ID)
		}
		users := usersByID(rec, group)
		for _, mig := range plan {
			err := mgr.cluster.Migrate(mig.From, mig.To, mig.Count)
			actions = append(actions, mgr.noteMigration(rec,
				Action{Kind: ActMigrate, Src: mig.From, Dst: mig.To, Users: mig.Count, Err: err},
				"evacuating draining server within Eq. (5) budgets", len(group), n, m, users))
		}
		return actions
	}
	plan := PlanMigrations(mgr.cfg.Model, ready, n, m)
	if mgr.cfg.UnpacedMigrations {
		plan = unpacedBalance(ready, n)
	}
	users := usersByID(rec, ready)
	for _, mig := range plan {
		err := mgr.cluster.Migrate(mig.From, mig.To, mig.Count)
		actions = append(actions, mgr.noteMigration(rec,
			Action{Kind: ActMigrate, Src: mig.From, Dst: mig.To, Users: mig.Count, Err: err},
			"Listing-1 balance toward power-weighted targets", l, n, m, users))
	}
	return actions
}

// usersByID indexes the group's user counts for budget reporting; it
// returns nil when auditing is off so the hot path allocates nothing.
func usersByID(rec *telemetry.DecisionRecord, servers []ServerState) map[string]int {
	if rec == nil {
		return nil
	}
	users := make(map[string]int, len(servers))
	for _, s := range servers {
		users[s.ID] = s.Users
	}
	return users
}

// unpacedBalance plans a full equalization toward the power-weighted
// targets in one step, with no migration-rate bounds (the [15]-style
// ablation).
func unpacedBalance(ready []ServerState, n int) []Migration {
	targets := Targets(ready, n)
	var plan []Migration
	for _, src := range ready {
		surplus := src.Users - targets[src.ID]
		if surplus <= 0 {
			continue
		}
		for _, dst := range ready {
			if surplus <= 0 {
				break
			}
			deficit := targets[dst.ID] - dst.Users
			if deficit <= 0 {
				continue
			}
			k := surplus
			if k > deficit {
				k = deficit
			}
			plan = append(plan, Migration{From: src.ID, To: dst.ID, Count: k})
			surplus -= k
		}
	}
	return plan
}

// unpacedDrain evacuates a draining server in one step.
func unpacedDrain(group []ServerState, drainID string) []Migration {
	var src *ServerState
	var targets []ServerState
	for i := range group {
		if group[i].ID == drainID {
			src = &group[i]
		} else {
			targets = append(targets, group[i])
		}
	}
	if src == nil || src.Users == 0 || len(targets) == 0 {
		return nil
	}
	per := src.Users / len(targets)
	rem := src.Users % len(targets)
	var plan []Migration
	for i, t := range targets {
		k := per
		if i < rem {
			k++
		}
		if k > 0 {
			plan = append(plan, Migration{From: drainID, To: t.ID, Count: k})
		}
	}
	return plan
}

// pickSubstitutionTarget chooses which server to replace with a stronger
// resource: the weakest class first (biggest upgrade win), then the
// busiest, with ID tie-breaks for determinism.
func pickSubstitutionTarget(ready []ServerState) ServerState {
	sorted := append([]ServerState(nil), ready...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Power != sorted[j].Power {
			return sorted[i].Power < sorted[j].Power
		}
		if sorted[i].Users != sorted[j].Users {
			return sorted[i].Users > sorted[j].Users
		}
		return sorted[i].ID < sorted[j].ID
	})
	return sorted[0]
}
