package rms

import (
	"math"
	"sort"

	"roia/internal/model"
)

// Config tunes the model-driven Manager.
type Config struct {
	// Model is the calibrated scalability model.
	Model *model.Model
	// TriggerFraction is the share of n_max(l) at which replication is
	// enacted; default model.DefaultTriggerFraction (the 80 % rule).
	TriggerFraction float64
	// RemoveHeadroom guards resource removal: a replica is drained only
	// when n is below RemoveHeadroom × the (l−1)-replica trigger, so the
	// shrunken cluster retains margin before it would have to scale right
	// back up. Default 0.9.
	RemoveHeadroom float64
	// MaxReplicas overrides the model's l_max when positive.
	MaxReplicas int
	// CooldownSec is the minimum time between replica-set changes.
	// Default 15 s.
	CooldownSec float64
	// UnpacedMigrations disables the Eq. (5) migration budgets: plans move
	// the full surplus immediately, as the paper's predecessor model [15]
	// (which "does not address the additional workload caused by user
	// migration") would. Ablation switch — benches use it to quantify what
	// the paper's migration-overhead terms buy.
	UnpacedMigrations bool
}

func (c Config) withDefaults() Config {
	if c.TriggerFraction <= 0 || c.TriggerFraction > 1 {
		c.TriggerFraction = model.DefaultTriggerFraction
	}
	if c.RemoveHeadroom <= 0 || c.RemoveHeadroom > 1 {
		c.RemoveHeadroom = 0.9
	}
	if c.CooldownSec <= 0 {
		c.CooldownSec = 15
	}
	return c
}

// Manager is the model-driven RTF-RMS controller for one zone.
type Manager struct {
	cluster Cluster
	cfg     Config

	lastScale float64
	// pendingSubs maps a provisioning replacement server to the server it
	// substitutes; the old server drains once the replacement is ready.
	pendingSubs map[string]string
}

// NewManager returns a Manager driving the cluster with the given
// configuration. It panics if cfg.Model is nil (static wiring error).
func NewManager(cluster Cluster, cfg Config) *Manager {
	if cfg.Model == nil {
		panic("rms: Config.Model must be set")
	}
	return &Manager{
		cluster:     cluster,
		cfg:         cfg.withDefaults(),
		lastScale:   math.Inf(-1),
		pendingSubs: make(map[string]string),
	}
}

// MaxReplicas returns the effective replica cap: the configuration
// override or the model's l_max (Eq. 3).
func (mgr *Manager) MaxReplicas(m int) int {
	if mgr.cfg.MaxReplicas > 0 {
		return mgr.cfg.MaxReplicas
	}
	lmax, _ := mgr.cfg.Model.MaxReplicas(m)
	return lmax
}

// Step implements Controller: one control-loop iteration. Call it once
// per second of session time.
func (mgr *Manager) Step(now float64) []Action {
	var actions []Action
	servers := mgr.cluster.Servers()
	n := mgr.cluster.ZoneUsers()
	m := mgr.cluster.NPCCount()

	// Activate pending substitutions whose replacement became ready.
	for newID, oldID := range mgr.pendingSubs {
		for _, s := range servers {
			if s.ID == newID && s.Ready {
				if err := mgr.cluster.SetDraining(oldID, true); err == nil {
					actions = append(actions, Action{Kind: ActDrain, Src: oldID})
				}
				delete(mgr.pendingSubs, newID)
			}
		}
	}
	if len(actions) > 0 {
		servers = mgr.cluster.Servers() // re-snapshot after drains started
	}

	// Finish drains: empty draining servers are removed.
	for _, s := range servers {
		if s.Draining && s.Users == 0 {
			err := mgr.cluster.RemoveReplica(s.ID)
			actions = append(actions, Action{Kind: ActRemove, Src: s.ID, Err: err})
		}
	}

	servers = mgr.cluster.Servers()
	var ready, draining []ServerState
	provisioning := false
	for _, s := range servers {
		switch {
		case !s.Ready:
			provisioning = true
		case s.Draining:
			draining = append(draining, s)
		default:
			ready = append(ready, s)
		}
	}
	l := len(ready)
	if l == 0 {
		return actions
	}

	settled := !provisioning && len(draining) == 0 && now-mgr.lastScale >= mgr.cfg.CooldownSec
	// Power-aware capacity: equals the model's n_max(l) for a homogeneous
	// baseline fleet and credits stronger machines after substitution.
	nmax, _ := Capacity(mgr.cfg.Model, ready, m)
	trigger := model.ReplicationTrigger(nmax, mgr.cfg.TriggerFraction)

	switch {
	// Replication enactment / resource substitution (scale up).
	case n >= trigger && settled:
		if l < mgr.MaxReplicas(m) {
			id, err := mgr.cluster.AddReplica()
			actions = append(actions, Action{Kind: ActReplicate, Dst: id, Err: err})
			if err == nil {
				mgr.lastScale = now
			}
		} else {
			target := pickSubstitutionTarget(ready)
			newID, err := mgr.cluster.Substitute(target.ID)
			if err != nil {
				actions = append(actions, Action{Kind: ActSaturated, Src: target.ID, Err: err})
				// Nothing stronger exists; re-alerting every step is
				// noise, so back off for a cooldown period.
				mgr.lastScale = now
			} else {
				actions = append(actions, Action{Kind: ActSubstitute, Src: target.ID, Dst: newID})
				mgr.pendingSubs[newID] = target.ID
				mgr.lastScale = now
			}
		}

	// Resource removal (scale down).
	case l > 1 && settled:
		least := ready[0]
		for _, s := range ready[1:] {
			if s.Users < least.Users || (s.Users == least.Users && s.ID < least.ID) {
				least = s
			}
		}
		remaining := make([]ServerState, 0, l-1)
		for _, s := range ready {
			if s.ID != least.ID {
				remaining = append(remaining, s)
			}
		}
		nmaxPrev, _ := Capacity(mgr.cfg.Model, remaining, m)
		triggerPrev := model.ReplicationTrigger(nmaxPrev, mgr.cfg.TriggerFraction)
		if float64(n) < mgr.cfg.RemoveHeadroom*float64(triggerPrev) {
			if err := mgr.cluster.SetDraining(least.ID, true); err == nil {
				actions = append(actions, Action{Kind: ActDrain, Src: least.ID})
				mgr.lastScale = now
			}
		}
	}

	// User migration, bounded by the model's per-second thresholds.
	// RTF-RMS "must consider the overall number of concurrent user
	// migrations" (Section IV): each server participates in at most one
	// plan per step, so per-server migration charges never stack beyond
	// the Eq. (5) budgets. Draining servers are evacuated first — one per
	// step — and Listing-1 balancing runs only in drain-free steps.
	if len(draining) > 0 {
		d := draining[0]
		group := append(append([]ServerState(nil), ready...), d)
		plan := PlanDrain(mgr.cfg.Model, group, d.ID, n, m)
		if mgr.cfg.UnpacedMigrations {
			plan = unpacedDrain(group, d.ID)
		}
		for _, mig := range plan {
			err := mgr.cluster.Migrate(mig.From, mig.To, mig.Count)
			actions = append(actions, Action{Kind: ActMigrate, Src: mig.From, Dst: mig.To, Users: mig.Count, Err: err})
		}
		return actions
	}
	plan := PlanMigrations(mgr.cfg.Model, ready, n, m)
	if mgr.cfg.UnpacedMigrations {
		plan = unpacedBalance(ready, n)
	}
	for _, mig := range plan {
		err := mgr.cluster.Migrate(mig.From, mig.To, mig.Count)
		actions = append(actions, Action{Kind: ActMigrate, Src: mig.From, Dst: mig.To, Users: mig.Count, Err: err})
	}
	return actions
}

// unpacedBalance plans a full equalization toward the power-weighted
// targets in one step, with no migration-rate bounds (the [15]-style
// ablation).
func unpacedBalance(ready []ServerState, n int) []Migration {
	targets := Targets(ready, n)
	var plan []Migration
	for _, src := range ready {
		surplus := src.Users - targets[src.ID]
		if surplus <= 0 {
			continue
		}
		for _, dst := range ready {
			if surplus <= 0 {
				break
			}
			deficit := targets[dst.ID] - dst.Users
			if deficit <= 0 {
				continue
			}
			k := surplus
			if k > deficit {
				k = deficit
			}
			plan = append(plan, Migration{From: src.ID, To: dst.ID, Count: k})
			surplus -= k
		}
	}
	return plan
}

// unpacedDrain evacuates a draining server in one step.
func unpacedDrain(group []ServerState, drainID string) []Migration {
	var src *ServerState
	var targets []ServerState
	for i := range group {
		if group[i].ID == drainID {
			src = &group[i]
		} else {
			targets = append(targets, group[i])
		}
	}
	if src == nil || src.Users == 0 || len(targets) == 0 {
		return nil
	}
	per := src.Users / len(targets)
	rem := src.Users % len(targets)
	var plan []Migration
	for i, t := range targets {
		k := per
		if i < rem {
			k++
		}
		if k > 0 {
			plan = append(plan, Migration{From: drainID, To: t.ID, Count: k})
		}
	}
	return plan
}

// pickSubstitutionTarget chooses which server to replace with a stronger
// resource: the weakest class first (biggest upgrade win), then the
// busiest, with ID tie-breaks for determinism.
func pickSubstitutionTarget(ready []ServerState) ServerState {
	sorted := append([]ServerState(nil), ready...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Power != sorted[j].Power {
			return sorted[i].Power < sorted[j].Power
		}
		if sorted[i].Users != sorted[j].Users {
			return sorted[i].Users > sorted[j].Users
		}
		return sorted[i].ID < sorted[j].ID
	})
	return sorted[0]
}
