package rms

import (
	"strings"
	"testing"
)

func TestStaticIntervalDefersFirstDecision(t *testing.T) {
	fc := &fakeCluster{servers: []ServerState{
		{ID: "a", Users: 100, TickMS: 50, Power: 1, Ready: true},
	}}
	c := &StaticInterval{Cluster: fc, IntervalSec: 60, UpperMS: 32, LowerMS: 8}
	// First step establishes the schedule without scaling, even though
	// the mean tick is over the threshold.
	if actions := c.Step(0); hasKind(actions, ActReplicate) {
		t.Fatalf("scaled on the very first step: %v", kinds(actions))
	}
	// After the interval the static threshold fires.
	actions := c.Step(60)
	if !hasKind(actions, ActReplicate) {
		t.Fatalf("no replication after interval: %v", kinds(actions))
	}
	if fc.addCalls != 1 {
		t.Fatalf("addCalls = %d", fc.addCalls)
	}
}

func TestStaticIntervalScaleDownAndEqualize(t *testing.T) {
	fc := &fakeCluster{servers: []ServerState{
		{ID: "a", Users: 30, TickMS: 2, Power: 1, Ready: true},
		{ID: "b", Users: 10, TickMS: 1, Power: 1, Ready: true},
	}}
	c := &StaticInterval{Cluster: fc, IntervalSec: 30, UpperMS: 32, LowerMS: 8}
	// First step: schedule only, but equalization runs every step.
	actions := c.Step(0)
	if !hasKind(actions, ActMigrate) {
		t.Fatalf("no equalization: %v", kinds(actions))
	}
	if fc.find("a").Users != 20 || fc.find("b").Users != 20 {
		t.Fatalf("not equalized: %d/%d", fc.find("a").Users, fc.find("b").Users)
	}
	// After the interval, mean tick below LowerMS → drain least loaded.
	actions = c.Step(30)
	if !hasKind(actions, ActDrain) {
		t.Fatalf("no drain on low load: %v", kinds(actions))
	}
	// Draining server evacuates wholesale, then is removed when empty.
	for i := 31; i < 40 && len(fc.servers) > 1; i++ {
		c.Step(float64(i))
	}
	if len(fc.servers) != 1 {
		t.Fatalf("drained server never removed: %d servers", len(fc.servers))
	}
	if fc.ZoneUsers() != 40 {
		t.Fatalf("users lost during baseline drain: %d", fc.ZoneUsers())
	}
}

func TestStaticIntervalRespectsMaxReplicasAndProvisioning(t *testing.T) {
	fc := &fakeCluster{
		servers:       []ServerState{{ID: "a", Users: 100, TickMS: 60, Power: 1, Ready: true}},
		notReadyOnAdd: true,
	}
	c := &StaticInterval{Cluster: fc, IntervalSec: 10, UpperMS: 32, LowerMS: 8, MaxReplicas: 2}
	c.Step(0)  // schedule
	c.Step(10) // replicate (provisioning)
	if fc.addCalls != 1 {
		t.Fatalf("addCalls = %d", fc.addCalls)
	}
	c.Step(20) // still provisioning: no second add
	if fc.addCalls != 1 {
		t.Fatal("scaled while provisioning")
	}
	fc.makeReady()
	fc.servers[0].TickMS = 60
	c.Step(30) // at MaxReplicas: no third add
	c.Step(40)
	if fc.addCalls != 2 && fc.addCalls != 1 {
		t.Fatalf("addCalls = %d", fc.addCalls)
	}
	c.Step(50)
	if len(fc.servers) > 2 {
		t.Fatalf("exceeded MaxReplicas: %d servers", len(fc.servers))
	}
}

func TestStaticThresholdMovesExcessAndScales(t *testing.T) {
	fc := &fakeCluster{servers: []ServerState{
		{ID: "a", Users: 140, Power: 1, Ready: true},
		{ID: "b", Users: 10, Power: 1, Ready: true},
	}}
	c := &StaticThreshold{Cluster: fc, MaxUsersPerServer: 100}
	actions := c.Step(0)
	if !hasKind(actions, ActMigrate) {
		t.Fatalf("excess not moved: %v", kinds(actions))
	}
	if fc.find("a").Users != 100 {
		t.Fatalf("server a at %d, want capped 100", fc.find("a").Users)
	}
	if fc.find("b").Users != 50 {
		t.Fatalf("server b at %d, want 50", fc.find("b").Users)
	}

	// Near saturation (≥ 90 % of 2×100): replica added.
	fc.find("a").Users = 95
	fc.find("b").Users = 90
	actions = c.Step(1)
	if !hasKind(actions, ActReplicate) {
		t.Fatalf("no scale-up near saturation: %v", kinds(actions))
	}
}

func TestStaticThresholdDefaultCap(t *testing.T) {
	fc := &fakeCluster{servers: []ServerState{
		{ID: "a", Users: 150, Power: 1, Ready: true},
		{ID: "b", Users: 0, Power: 1, Ready: true},
	}}
	c := &StaticThreshold{Cluster: fc} // zero cap → default 100
	c.Step(0)
	if fc.find("a").Users != 100 {
		t.Fatalf("default cap not applied: %d", fc.find("a").Users)
	}
}

func TestProportionalRebalancesByPower(t *testing.T) {
	fc := &fakeCluster{servers: []ServerState{
		{ID: "weak", Users: 90, Power: 1, Ready: true},
		{ID: "strong", Users: 30, Power: 3, Ready: true},
	}}
	c := &Proportional{Cluster: fc}
	actions := c.Step(0)
	if !hasKind(actions, ActMigrate) {
		t.Fatalf("no rebalance: %v", kinds(actions))
	}
	// 120 users split 1:3 → 30/90.
	if fc.find("weak").Users != 30 || fc.find("strong").Users != 90 {
		t.Fatalf("split = %d/%d, want 30/90", fc.find("weak").Users, fc.find("strong").Users)
	}
	// Balanced: second step is a no-op.
	if actions := c.Step(1); len(actions) != 0 {
		t.Fatalf("rebalanced a balanced fleet: %v", actions)
	}
}

func TestProportionalSingleServerNoop(t *testing.T) {
	fc := &fakeCluster{servers: []ServerState{{ID: "a", Users: 50, Power: 1, Ready: true}}}
	c := &Proportional{Cluster: fc}
	if actions := c.Step(0); actions != nil {
		t.Fatalf("single-server rebalance: %v", actions)
	}
}

func TestActionStrings(t *testing.T) {
	cases := map[string]Action{
		"migrate 5 users a→b": {Kind: ActMigrate, Src: "a", Dst: "b", Users: 5},
		"replicate → c":       {Kind: ActReplicate, Dst: "c"},
		"substitute a → d":    {Kind: ActSubstitute, Src: "a", Dst: "d"},
		"remove a":            {Kind: ActRemove, Src: "a"},
		"drain a":             {Kind: ActDrain, Src: "a"},
	}
	for want, a := range cases {
		if got := a.String(); got != want {
			t.Fatalf("Action.String = %q, want %q", got, want)
		}
	}
	if s := (Action{Kind: ActSaturated}).String(); !strings.Contains(s, "redesign") {
		t.Fatalf("saturated string = %q", s)
	}
	for _, k := range []ActionKind{ActMigrate, ActReplicate, ActSubstitute, ActRemove, ActDrain, ActSaturated} {
		if k.String() == "" || strings.HasPrefix(k.String(), "action(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if ActionKind(99).String() != "action(99)" {
		t.Fatal("unknown kind rendering")
	}
}

func TestPickSubstitutionTarget(t *testing.T) {
	// Weakest power first; then busiest; then lexicographic.
	got := pickSubstitutionTarget([]ServerState{
		{ID: "b", Power: 2, Users: 100},
		{ID: "a", Power: 1, Users: 10},
		{ID: "c", Power: 1, Users: 50},
	})
	if got.ID != "c" {
		t.Fatalf("target = %s, want c (weakest power, busiest)", got.ID)
	}
	got = pickSubstitutionTarget([]ServerState{
		{ID: "y", Power: 1, Users: 50},
		{ID: "x", Power: 1, Users: 50},
	})
	if got.ID != "x" {
		t.Fatalf("tie-break target = %s, want x", got.ID)
	}
}
