package rms

import (
	"errors"
	"fmt"
	"testing"

	"roia/internal/cloud"
)

// fakeCluster is a scriptable in-memory Cluster for controller tests.
type fakeCluster struct {
	servers []ServerState
	npcs    int

	migrations  []Migration
	addCalls    int
	addErr      error
	subErr      error
	removed     []string
	substituted []string
	nextID      int
	// startupDelay > 0 makes new replicas appear as not-Ready; tests call
	// makeReady to finish provisioning.
	notReadyOnAdd bool
}

func (f *fakeCluster) Servers() []ServerState { return append([]ServerState(nil), f.servers...) }

func (f *fakeCluster) ZoneUsers() int {
	n := 0
	for _, s := range f.servers {
		n += s.Users
	}
	return n
}

func (f *fakeCluster) NPCCount() int { return f.npcs }

func (f *fakeCluster) find(id string) *ServerState {
	for i := range f.servers {
		if f.servers[i].ID == id {
			return &f.servers[i]
		}
	}
	return nil
}

func (f *fakeCluster) Migrate(src, dst string, count int) error {
	s, d := f.find(src), f.find(dst)
	if s == nil || d == nil {
		return errors.New("unknown server")
	}
	if count > s.Users {
		count = s.Users
	}
	s.Users -= count
	d.Users += count
	f.migrations = append(f.migrations, Migration{From: src, To: dst, Count: count})
	return nil
}

func (f *fakeCluster) AddReplica() (string, error) {
	if f.addErr != nil {
		return "", f.addErr
	}
	f.addCalls++
	f.nextID++
	id := fmt.Sprintf("new-%d", f.nextID)
	f.servers = append(f.servers, ServerState{ID: id, Power: 1, Class: "standard", Ready: !f.notReadyOnAdd})
	return id, nil
}

func (f *fakeCluster) RemoveReplica(id string) error {
	for i := range f.servers {
		if f.servers[i].ID == id {
			f.servers = append(f.servers[:i], f.servers[i+1:]...)
			f.removed = append(f.removed, id)
			return nil
		}
	}
	return errors.New("unknown server")
}

func (f *fakeCluster) SetDraining(id string, on bool) error {
	s := f.find(id)
	if s == nil {
		return errors.New("unknown server")
	}
	s.Draining = on
	return nil
}

func (f *fakeCluster) Substitute(id string) (string, error) {
	if f.subErr != nil {
		return "", f.subErr
	}
	f.substituted = append(f.substituted, id)
	f.nextID++
	nid := fmt.Sprintf("sub-%d", f.nextID)
	f.servers = append(f.servers, ServerState{ID: nid, Power: 2, Class: "highcpu", Ready: !f.notReadyOnAdd})
	return nid, nil
}

func (f *fakeCluster) makeReady() {
	for i := range f.servers {
		f.servers[i].Ready = true
	}
}

func kinds(actions []Action) []ActionKind {
	out := make([]ActionKind, len(actions))
	for i, a := range actions {
		out[i] = a.Kind
	}
	return out
}

func hasKind(actions []Action, k ActionKind) bool {
	for _, a := range actions {
		if a.Kind == k {
			return true
		}
	}
	return false
}

func TestManagerReplicatesAtTrigger(t *testing.T) {
	mdl := rtfModel(t)
	// n_max(1)=235, trigger = 188.
	fc := &fakeCluster{servers: []ServerState{{ID: "s1", Users: 188, Power: 1, Ready: true}}}
	mgr := NewManager(fc, Config{Model: mdl})
	actions := mgr.Step(0)
	if !hasKind(actions, ActReplicate) {
		t.Fatalf("no replication at trigger: %v", kinds(actions))
	}
	if fc.addCalls != 1 {
		t.Fatalf("addCalls = %d", fc.addCalls)
	}
}

func TestManagerNoReplicationBelowTrigger(t *testing.T) {
	mdl := rtfModel(t)
	fc := &fakeCluster{servers: []ServerState{{ID: "s1", Users: 187, Power: 1, Ready: true}}}
	mgr := NewManager(fc, Config{Model: mdl})
	if actions := mgr.Step(0); hasKind(actions, ActReplicate) {
		t.Fatalf("replicated below the 80%% trigger: %v", kinds(actions))
	}
}

func TestManagerCooldownPreventsThrashing(t *testing.T) {
	mdl := rtfModel(t)
	fc := &fakeCluster{servers: []ServerState{{ID: "s1", Users: 200, Power: 1, Ready: true}}}
	mgr := NewManager(fc, Config{Model: mdl, CooldownSec: 30})
	mgr.Step(0)
	if fc.addCalls != 1 {
		t.Fatalf("addCalls = %d", fc.addCalls)
	}
	// Load still above the 2-replica trigger? n=200 < trigger(2)=265, so
	// no second replica is wanted anyway; force the situation by piling
	// users on.
	fc.servers[0].Users = 300
	mgr.Step(10) // within cooldown
	if fc.addCalls != 1 {
		t.Fatal("replicated during cooldown")
	}
	mgr.Step(31) // cooldown expired
	if fc.addCalls != 2 {
		t.Fatalf("addCalls after cooldown = %d, want 2", fc.addCalls)
	}
}

func TestManagerWaitsForProvisioning(t *testing.T) {
	mdl := rtfModel(t)
	fc := &fakeCluster{
		servers:       []ServerState{{ID: "s1", Users: 300, Power: 1, Ready: true}},
		notReadyOnAdd: true,
	}
	mgr := NewManager(fc, Config{Model: mdl, CooldownSec: 1})
	mgr.Step(0)
	if fc.addCalls != 1 {
		t.Fatalf("addCalls = %d", fc.addCalls)
	}
	// Replica still provisioning: no further scale-up even after cooldown.
	mgr.Step(10)
	if fc.addCalls != 1 {
		t.Fatal("scaled up while a replica was provisioning")
	}
	// Once ready, the Listing-1 balancing moves users toward it.
	fc.makeReady()
	actions := mgr.Step(20)
	if !hasKind(actions, ActMigrate) {
		t.Fatalf("no migrations to the fresh replica: %v", kinds(actions))
	}
	fresh := fc.find("new-1")
	if fresh.Users == 0 {
		t.Fatal("fresh replica received no users")
	}
}

func TestManagerMigrationsBounded(t *testing.T) {
	mdl := rtfModel(t)
	fc := &fakeCluster{servers: []ServerState{
		{ID: "a", Users: 180, Power: 1, Ready: true},
		{ID: "b", Users: 80, Power: 1, Ready: true},
	}}
	mgr := NewManager(fc, Config{Model: mdl})
	mgr.Step(0)
	moved := 0
	for _, m := range fc.migrations {
		moved += m.Count
	}
	if moved == 0 {
		t.Fatal("no balancing migrations")
	}
	if xini := mdl.MaxMigrationsIni(2, 260, 0, 180); moved > xini {
		t.Fatalf("moved %d users in one step, model budget is %d", moved, xini)
	}
}

func TestManagerSubstitutesAtReplicaCap(t *testing.T) {
	mdl := rtfModel(t)
	fc := &fakeCluster{servers: []ServerState{{ID: "s1", Users: 230, Power: 1, Ready: true}}}
	mgr := NewManager(fc, Config{Model: mdl, MaxReplicas: 1})
	actions := mgr.Step(0)
	if !hasKind(actions, ActSubstitute) {
		t.Fatalf("no substitution at the replica cap: %v", kinds(actions))
	}
	if len(fc.substituted) != 1 || fc.substituted[0] != "s1" {
		t.Fatalf("substituted = %v", fc.substituted)
	}
	// The replacement is ready immediately here, so the next step drains
	// the old server and migrates users off it.
	actions = mgr.Step(20)
	if !hasKind(actions, ActDrain) {
		t.Fatalf("old server not drained: %v", kinds(actions))
	}
	if !fc.find("s1").Draining {
		t.Fatal("s1 not marked draining")
	}
	// Keep stepping: drain migrations flow, and once empty, removal.
	for i := 0; i < 400 && fc.find("s1") != nil; i++ {
		mgr.Step(float64(40 + i))
	}
	if fc.find("s1") != nil {
		t.Fatalf("substituted server never removed (users left: %d)", fc.find("s1").Users)
	}
	if fc.find("sub-1") == nil {
		t.Fatal("replacement disappeared")
	}
}

func TestManagerReportsSaturation(t *testing.T) {
	mdl := rtfModel(t)
	fc := &fakeCluster{
		servers: []ServerState{{ID: "s1", Users: 230, Power: 1, Class: "huge", Ready: true}},
		subErr:  cloud.ErrNoStrongerClass,
	}
	mgr := NewManager(fc, Config{Model: mdl, MaxReplicas: 1, CooldownSec: 30})
	actions := mgr.Step(0)
	if !hasKind(actions, ActSaturated) {
		t.Fatalf("saturation not reported: %v", kinds(actions))
	}
	// Saturation backs off for a cooldown instead of re-alerting hot.
	if actions = mgr.Step(1); hasKind(actions, ActSaturated) {
		t.Fatal("saturation re-alerted within cooldown")
	}
	if actions = mgr.Step(31); !hasKind(actions, ActSaturated) {
		t.Fatalf("saturation not re-alerted after cooldown: %v", kinds(actions))
	}
}

func TestManagerCapacityAwareOfPower(t *testing.T) {
	mdl := rtfModel(t)
	// A 4x machine at 230 users is far from ITS capacity: no scale-up.
	fc := &fakeCluster{
		servers: []ServerState{{ID: "s1", Users: 230, Power: 4, Class: "huge", Ready: true}},
	}
	mgr := NewManager(fc, Config{Model: mdl, MaxReplicas: 1})
	if actions := mgr.Step(0); hasKind(actions, ActSaturated) || hasKind(actions, ActReplicate) {
		t.Fatalf("power-aware capacity ignored: %v", kinds(actions))
	}
}

func TestManagerScalesDown(t *testing.T) {
	mdl := rtfModel(t)
	// Two replicas, few users: n=40 is far below 0.9·trigger(1)=169.
	fc := &fakeCluster{servers: []ServerState{
		{ID: "a", Users: 20, Power: 1, Ready: true},
		{ID: "b", Users: 20, Power: 1, Ready: true},
	}}
	mgr := NewManager(fc, Config{Model: mdl})
	actions := mgr.Step(0)
	if !hasKind(actions, ActDrain) {
		t.Fatalf("no drain on underutilization: %v", kinds(actions))
	}
	for i := 0; i < 200 && len(fc.servers) > 1; i++ {
		mgr.Step(float64(1 + i))
	}
	if len(fc.servers) != 1 {
		t.Fatalf("underutilized replica never removed: %d servers", len(fc.servers))
	}
	if got := fc.ZoneUsers(); got != 40 {
		t.Fatalf("users lost during scale down: %d", got)
	}
}

func TestManagerNeverDrainsLastReplica(t *testing.T) {
	mdl := rtfModel(t)
	fc := &fakeCluster{servers: []ServerState{{ID: "a", Users: 5, Power: 1, Ready: true}}}
	mgr := NewManager(fc, Config{Model: mdl})
	for i := 0; i < 50; i++ {
		mgr.Step(float64(i))
	}
	if len(fc.servers) != 1 || fc.servers[0].Draining {
		t.Fatal("manager drained the last replica")
	}
}

func TestManagerPanicsWithoutModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil model")
		}
	}()
	NewManager(&fakeCluster{}, Config{})
}
