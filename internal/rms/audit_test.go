package rms

import (
	"strings"
	"testing"

	"roia/internal/telemetry"
)

// stepUntil drives the manager until pred holds over the sink's records or
// the step budget runs out, returning all collected records.
func stepUntil(mgr *Manager, sink *telemetry.MemorySink, steps int, pred func([]telemetry.DecisionRecord) bool) []telemetry.DecisionRecord {
	for i := 0; i < steps; i++ {
		mgr.Step(float64(i))
		if pred(sink.Snapshot()) {
			break
		}
	}
	return sink.Snapshot()
}

func actionsOfKind(records []telemetry.DecisionRecord, kind string) []struct {
	rec telemetry.DecisionRecord
	act telemetry.AuditAction
} {
	var out []struct {
		rec telemetry.DecisionRecord
		act telemetry.AuditAction
	}
	for _, r := range records {
		for _, a := range r.Actions {
			if a.Kind == kind {
				out = append(out, struct {
					rec telemetry.DecisionRecord
					act telemetry.AuditAction
				}{r, a})
			}
		}
	}
	return out
}

func TestAuditRecordsScaleUpThresholds(t *testing.T) {
	mdl := rtfModel(t)
	fc := &fakeCluster{servers: []ServerState{{ID: "s1", Users: 200, Power: 1, Ready: true}}}
	var sink telemetry.MemorySink
	mgr := NewManager(fc, Config{Model: mdl, Audit: &sink})
	mgr.Step(0)
	records := sink.Snapshot()
	if len(records) != 1 {
		t.Fatalf("got %d records, want 1 per step", len(records))
	}
	rec := records[0]
	// Inputs.
	if rec.Users != 200 || rec.Replicas != 1 {
		t.Fatalf("inputs n=%d l=%d, want 200/1", rec.Users, rec.Replicas)
	}
	if len(rec.Servers) != 1 || rec.Servers[0].ID != "s1" || rec.Servers[0].Users != 200 {
		t.Fatalf("server snapshot = %+v", rec.Servers)
	}
	// Thresholds that justified the decision: n_max(1)=235, trigger=188,
	// l_max(c=0.15)=8 for the RTFDemo profile.
	if rec.NMax != 235 || rec.Trigger != 188 || rec.LMax != 8 {
		t.Fatalf("thresholds n_max=%d trigger=%d l_max=%d, want 235/188/8", rec.NMax, rec.Trigger, rec.LMax)
	}
	if rec.TriggerFraction != 0.8 || rec.RemoveHeadroom != 0.9 {
		t.Fatalf("fractions = %g/%g", rec.TriggerFraction, rec.RemoveHeadroom)
	}
	if !rec.Settled {
		t.Fatal("settled step not marked settled")
	}
	// The replicate action and its reason.
	reps := actionsOfKind(records, "replicate")
	if len(reps) != 1 {
		t.Fatalf("replicate actions = %+v", records)
	}
	reason := reps[0].act.Reason
	for _, want := range []string{"n=200", "trigger=188", "n_max=235", "l_max=8"} {
		if !strings.Contains(reason, want) {
			t.Fatalf("replicate reason %q lacks %q", reason, want)
		}
	}
}

func TestAuditRecordsScaleDownAndMigrations(t *testing.T) {
	mdl := rtfModel(t)
	fc := &fakeCluster{servers: []ServerState{
		{ID: "a", Users: 30, Power: 1, Ready: true},
		{ID: "b", Users: 10, Power: 1, Ready: true},
	}}
	var sink telemetry.MemorySink
	mgr := NewManager(fc, Config{Model: mdl, Audit: &sink})
	records := stepUntil(mgr, &sink, 100, func(rs []telemetry.DecisionRecord) bool {
		return len(actionsOfKind(rs, "remove")) > 0
	})

	drains := actionsOfKind(records, "drain")
	if len(drains) == 0 {
		t.Fatalf("no drain recorded: %+v", records)
	}
	// Every scale-down action carries the thresholds that justified it:
	// the record-level n_max/l_max plus a reason naming the headroom rule.
	for _, d := range drains {
		if d.rec.NMax <= 0 || d.rec.LMax <= 0 {
			t.Fatalf("drain record lacks thresholds: %+v", d.rec)
		}
		if !strings.Contains(d.act.Reason, "trigger(l-1)") {
			t.Fatalf("drain reason %q lacks the headroom trigger", d.act.Reason)
		}
	}
	removes := actionsOfKind(records, "remove")
	if len(removes) != 1 || removes[0].act.Src == "" {
		t.Fatalf("removes = %+v", removes)
	}

	// Drain migrations carry both Eq. (5) budgets and never exceed them.
	migs := actionsOfKind(records, "migrate")
	if len(migs) == 0 {
		t.Fatal("no migrations recorded during drain")
	}
	for _, m := range migs {
		if m.act.XMaxIni <= 0 || m.act.XMaxRcv <= 0 {
			t.Fatalf("migration lacks budgets: %+v", m.act)
		}
		if m.act.Users > m.act.XMaxIni || m.act.Users > m.act.XMaxRcv {
			t.Fatalf("migration of %d users exceeds budgets ini=%d rcv=%d",
				m.act.Users, m.act.XMaxIni, m.act.XMaxRcv)
		}
	}
}

func TestAuditQuietStepStillRecorded(t *testing.T) {
	mdl := rtfModel(t)
	fc := &fakeCluster{servers: []ServerState{{ID: "s1", Users: 100, Power: 1, Ready: true}}}
	var sink telemetry.MemorySink
	mgr := NewManager(fc, Config{Model: mdl, Audit: &sink})
	mgr.Step(0)
	mgr.Step(1)
	records := sink.Snapshot()
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2", len(records))
	}
	for _, r := range records {
		if len(r.Actions) != 0 {
			t.Fatalf("steady state produced actions: %+v", r.Actions)
		}
		if r.NMax != 235 || r.Trigger != 188 {
			t.Fatalf("steady record lacks thresholds: %+v", r)
		}
	}
}

func TestAuditOffByDefault(t *testing.T) {
	mdl := rtfModel(t)
	fc := &fakeCluster{servers: []ServerState{{ID: "s1", Users: 200, Power: 1, Ready: true}}}
	mgr := NewManager(fc, Config{Model: mdl})
	if actions := mgr.Step(0); !hasKind(actions, ActReplicate) {
		t.Fatalf("behaviour changed without audit: %v", kinds(actions))
	}
}
