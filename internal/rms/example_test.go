package rms_test

import (
	"fmt"

	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
)

// Listing 1 of the paper: workload-aware migration from the most loaded
// replica, bounded by the model's Eq. (5) thresholds.
func ExamplePlanMigrations() {
	mdl, _ := model.New(params.RTFDemo(), params.UFirstPersonShooter, params.CDefault)
	servers := []rms.ServerState{
		{ID: "replica-1", Users: 180},
		{ID: "replica-2", Users: 80},
	}
	for _, mig := range rms.PlanMigrations(mdl, servers, 260, 0) {
		fmt.Printf("migrate %d users %s → %s\n", mig.Count, mig.From, mig.To)
	}
	// Output:
	// migrate 3 users replica-1 → replica-2
}

// Power-weighted targets after resource substitution: the 2× machine
// carries twice the users.
func ExampleTargets() {
	servers := []rms.ServerState{
		{ID: "standard", Power: 1},
		{ID: "highcpu", Power: 2},
	}
	targets := rms.Targets(servers, 90)
	fmt.Printf("standard: %d users\n", targets["standard"])
	fmt.Printf("highcpu:  %d users\n", targets["highcpu"])
	// Output:
	// standard: 30 users
	// highcpu:  60 users
}
