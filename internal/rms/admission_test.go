package rms

import "testing"

func TestAdmissionAdmitsWithinHeadroom(t *testing.T) {
	mdl := rtfModel(t)
	adm := NewAdmission(mdl)
	servers := []ServerState{{ID: "a", Users: 100, Power: 1, Ready: true}}
	// Plenty of headroom: 50 arrivals all enter.
	if got := adm.Step(servers, 100, 0, 50); got != 50 {
		t.Fatalf("admitted %d, want 50", got)
	}
	if adm.Queued() != 0 {
		t.Fatalf("queued = %d", adm.Queued())
	}
}

func TestAdmissionQueuesBeyondCapacity(t *testing.T) {
	mdl := rtfModel(t)
	adm := NewAdmission(mdl)
	servers := []ServerState{{ID: "a", Users: 150, Power: 1, Ready: true}}
	// A 250-user burst on a single server (margin 0.95·U → ~228 users).
	admit := adm.Step(servers, 150, 0, 250)
	if admit <= 0 || admit >= 250 {
		t.Fatalf("admitted %d, want partial admission", admit)
	}
	if adm.Queued() != 250-admit {
		t.Fatalf("queued = %d, want %d", adm.Queued(), 250-admit)
	}
	// Every admitted user keeps the predicted tick under the margin.
	n := 150 + admit
	if tick := mdl.TickTimeUneven(1, n, 0, n); tick >= 0.95*mdl.U {
		t.Fatalf("admitted population violates the margin: %.2f ms", tick)
	}
	// And one more would not have fit.
	if tick := mdl.TickTimeUneven(1, n+1, 0, n+1); tick < 0.95*mdl.U {
		t.Fatalf("admission left room on the table: %.2f ms at n+1", tick)
	}
}

func TestAdmissionDrainsQueueAsCapacityArrives(t *testing.T) {
	mdl := rtfModel(t)
	adm := NewAdmission(mdl)
	one := []ServerState{{ID: "a", Users: 220, Power: 1, Ready: true}}
	adm.Step(one, 220, 0, 100)
	queued := adm.Queued()
	if queued == 0 {
		t.Fatal("burst not queued")
	}
	// A second (balanced) replica comes up: the queue drains.
	two := []ServerState{
		{ID: "a", Users: 110, Power: 1, Ready: true},
		{ID: "b", Users: 110, Power: 1, Ready: true},
	}
	admit := adm.Step(two, 220, 0, 0)
	if admit == 0 {
		t.Fatal("queue did not drain with new capacity")
	}
	if adm.Queued() != queued-admit {
		t.Fatalf("queue accounting broken: %d", adm.Queued())
	}
}

func TestAdmissionIgnoresUnreadyAndDraining(t *testing.T) {
	mdl := rtfModel(t)
	adm := NewAdmission(mdl)
	servers := []ServerState{
		{ID: "a", Users: 220, Power: 1, Ready: true},
		{ID: "b", Users: 0, Power: 1, Ready: false},                // provisioning
		{ID: "c", Users: 0, Power: 1, Ready: true, Draining: true}, // leaving
	}
	// Only "a" counts: at 220 users it is near capacity, so most of the
	// burst queues.
	admit := adm.Step(servers, 220, 0, 100)
	if admit > 10 {
		t.Fatalf("admitted %d against phantom capacity", admit)
	}
}

func TestAdmissionNoServers(t *testing.T) {
	mdl := rtfModel(t)
	adm := NewAdmission(mdl)
	if got := adm.Step(nil, 0, 0, 10); got != 0 {
		t.Fatalf("admitted %d with no servers", got)
	}
	if adm.Queued() != 10 {
		t.Fatalf("queued = %d", adm.Queued())
	}
}

func TestAdmissionAbandon(t *testing.T) {
	mdl := rtfModel(t)
	adm := NewAdmission(mdl)
	adm.Step(nil, 0, 0, 10) // all queued
	if got := adm.Abandon(4); got != 4 {
		t.Fatalf("abandoned %d", got)
	}
	if got := adm.Abandon(100); got != 6 {
		t.Fatalf("over-abandon returned %d, want 6", got)
	}
	if got := adm.Abandon(-1); got != 0 {
		t.Fatalf("negative abandon returned %d", got)
	}
	if adm.Queued() != 0 {
		t.Fatalf("queued = %d", adm.Queued())
	}
}

func TestAdmissionNegativeArrivalsClamped(t *testing.T) {
	mdl := rtfModel(t)
	adm := NewAdmission(mdl)
	servers := []ServerState{{ID: "a", Users: 10, Power: 1, Ready: true}}
	if got := adm.Step(servers, 10, 0, -5); got != 0 {
		t.Fatalf("admitted %d from negative arrivals", got)
	}
}

func TestNewAdmissionPanicsWithoutModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewAdmission(nil)
}
