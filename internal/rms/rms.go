// Package rms implements RTF-RMS, the paper's dynamic resource management
// system (Section IV), driven by the scalability model of internal/model.
//
// The Manager watches one zone's replica group through the Cluster
// interface and chooses among the four load-balancing actions of Fig. 3:
//
//   - user migration      — bounded by the model's x_max thresholds (Eq. 5),
//     planned per Listing 1;
//   - replication enactment — triggered at 80 % of the model's n_max
//     (Eq. 2) while below the model's l_max (Eq. 3);
//   - resource substitution — when l_max is reached, replace a server with
//     a more powerful resource class;
//   - resource removal    — when the load fits comfortably on fewer
//     replicas, drain and release a server.
//
// The same Manager code runs against the deterministic simulator
// (internal/sim) and against a live RTF cluster, because both implement
// Cluster.
package rms

import "fmt"

// ServerState is a monitoring snapshot of one replica, the per-server
// input to every load-balancing decision.
type ServerState struct {
	// ID identifies the server.
	ID string
	// Users is the number of users connected to this server (the model's
	// active-entity count a).
	Users int
	// TickMS is the recent mean tick duration in milliseconds, the
	// quality-of-experience signal the provider thresholds.
	TickMS float64
	// Power is the relative computational power of the underlying
	// resource (1.0 = baseline class).
	Power float64
	// Class is the resource class name (for substitution decisions).
	Class string
	// Ready reports whether provisioning has finished.
	Ready bool
	// Draining marks a server being emptied for removal/substitution.
	Draining bool
}

// Cluster is the control surface RTF-RMS drives. Implementations: the
// virtual-clock simulator (internal/sim) and the live-RTF adapter.
type Cluster interface {
	// Servers returns a snapshot of every replica of the zone, including
	// ones still provisioning.
	Servers() []ServerState
	// ZoneUsers returns the zone-wide user count n.
	ZoneUsers() int
	// NPCCount returns the zone-wide NPC count m.
	NPCCount() int
	// Migrate orders the migration of count users from src to dst. The
	// caller is responsible for keeping count within the model's
	// migration budgets.
	Migrate(src, dst string, count int) error
	// AddReplica provisions a new server for the zone and returns its ID.
	// The server becomes Ready after its class's startup delay.
	AddReplica() (string, error)
	// RemoveReplica shuts down an (empty) server and releases its
	// resource.
	RemoveReplica(id string) error
	// SetDraining marks a server as draining: it stops accepting new
	// users while the manager migrates its load away.
	SetDraining(id string, on bool) error
	// Substitute provisions a more powerful replacement for the given
	// server and returns the new server's ID. The old server keeps
	// serving until drained. It fails with a cloud.ErrNoStrongerClass-
	// wrapped error when the application has hit the critical density the
	// paper says requires redesign.
	Substitute(id string) (string, error)
}

// ActionKind enumerates RTF-RMS decisions, for logging and evaluation.
type ActionKind int

// The action kinds.
const (
	// ActMigrate is a bounded user migration between two replicas.
	ActMigrate ActionKind = iota
	// ActReplicate is a replication enactment (new replica leased).
	ActReplicate
	// ActSubstitute is a resource substitution (stronger replica leased).
	ActSubstitute
	// ActRemove is a resource removal (replica released).
	ActRemove
	// ActDrain marks a server as draining ahead of removal/substitution.
	ActDrain
	// ActSaturated reports that no stronger resource exists: the paper's
	// critical-user-density condition.
	ActSaturated
)

// String implements fmt.Stringer.
func (k ActionKind) String() string {
	switch k {
	case ActMigrate:
		return "migrate"
	case ActReplicate:
		return "replicate"
	case ActSubstitute:
		return "substitute"
	case ActRemove:
		return "remove"
	case ActDrain:
		return "drain"
	case ActSaturated:
		return "saturated"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// Action is one executed (or failed) load-balancing decision.
type Action struct {
	Kind ActionKind
	// Src and Dst are the involved servers (migration: from/to; replica
	// changes: the affected server in Src, a replacement in Dst).
	Src, Dst string
	// Users is the migration count, when applicable.
	Users int
	// Err records an execution failure.
	Err error
}

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a.Kind {
	case ActMigrate:
		return fmt.Sprintf("migrate %d users %s→%s", a.Users, a.Src, a.Dst)
	case ActReplicate:
		return fmt.Sprintf("replicate → %s", a.Dst)
	case ActSubstitute:
		return fmt.Sprintf("substitute %s → %s", a.Src, a.Dst)
	case ActRemove:
		return fmt.Sprintf("remove %s", a.Src)
	case ActDrain:
		return fmt.Sprintf("drain %s", a.Src)
	case ActSaturated:
		return "saturated: no stronger resource class (application redesign required)"
	default:
		return a.Kind.String()
	}
}

// Controller is a load-balancing strategy stepped once per control
// interval (one second in the experiments). The model-driven Manager and
// every baseline implement it, so they are interchangeable in benches.
type Controller interface {
	Step(now float64) []Action
}
