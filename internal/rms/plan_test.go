package rms

import (
	"math/rand"
	"testing"
	"testing/quick"

	"roia/internal/model"
	"roia/internal/params"
)

func rtfModel(t *testing.T) *model.Model {
	t.Helper()
	mdl, err := model.New(params.RTFDemo(), params.UFirstPersonShooter, params.CDefault)
	if err != nil {
		t.Fatal(err)
	}
	return mdl
}

func TestPlanMigrationsMovesFromMostLoaded(t *testing.T) {
	mdl := rtfModel(t)
	servers := []ServerState{
		{ID: "a", Users: 180},
		{ID: "b", Users: 80},
	}
	plan := PlanMigrations(mdl, servers, 260, 0)
	if len(plan) == 0 {
		t.Fatal("no migrations planned for imbalanced servers")
	}
	total := 0
	for _, mig := range plan {
		if mig.From != "a" || mig.To != "b" {
			t.Fatalf("wrong direction: %+v", mig)
		}
		if mig.Count <= 0 {
			t.Fatalf("non-positive count: %+v", mig)
		}
		total += mig.Count
	}
	// Never moves the source below the average (130).
	if total > 50 {
		t.Fatalf("moved %d users, surplus is only 50", total)
	}
	// Bounded by the model's x_max_ini for the source.
	if xini := mdl.MaxMigrationsIni(2, 260, 0, 180); total > xini {
		t.Fatalf("moved %d > x_max_ini %d", total, xini)
	}
}

func TestPlanMigrationsBalancedIsEmpty(t *testing.T) {
	mdl := rtfModel(t)
	servers := []ServerState{{ID: "a", Users: 100}, {ID: "b", Users: 100}}
	if plan := PlanMigrations(mdl, servers, 200, 0); plan != nil {
		t.Fatalf("plan for balanced servers: %v", plan)
	}
}

func TestPlanMigrationsSingleServerIsEmpty(t *testing.T) {
	mdl := rtfModel(t)
	if plan := PlanMigrations(mdl, []ServerState{{ID: "a", Users: 50}}, 50, 0); plan != nil {
		t.Fatalf("plan for single server: %v", plan)
	}
}

func TestPlanMigrationsOverloadRecovery(t *testing.T) {
	mdl := rtfModel(t)
	// 400 users on one server: its Eq.(4) tick exceeds U=40ms and even the
	// post-balance average (200) still violates, so Eq.(5) gives a zero
	// budget at every rung of the ladder. The recovery extension then
	// migrates at full surplus speed, bounded by the receiver's budget —
	// the only path back below the threshold.
	servers := []ServerState{{ID: "a", Users: 400}, {ID: "b", Users: 0}}
	plan := PlanMigrations(mdl, servers, 400, 0)
	if len(plan) == 0 {
		t.Fatal("overloaded group planned no recovery migrations")
	}
	total := 0
	for _, mig := range plan {
		if mig.From != "a" || mig.To != "b" {
			t.Fatalf("wrong direction: %+v", mig)
		}
		total += mig.Count
	}
	if total > 200 {
		t.Fatalf("moved %d users past the target share of 200", total)
	}
	// The receiver at 0 users is NOT violating (shadow cost only), so its
	// Eq.(5) budget still applies — recovery must not dump everything.
	if rcv := mdl.MaxMigrationsRcv(2, 400, 0, 0); total > rcv {
		t.Fatalf("moved %d > receiver budget %d", total, rcv)
	}
}

func TestPlanMigrationsHeterogeneousTargets(t *testing.T) {
	mdl := rtfModel(t)
	// A 2x machine should end up with twice the users: targets 40/80.
	servers := []ServerState{
		{ID: "weak", Users: 90, Power: 1},
		{ID: "strong", Users: 30, Power: 2},
	}
	plan := PlanMigrations(mdl, servers, 120, 0)
	if len(plan) == 0 {
		t.Fatal("no plan for heterogeneous imbalance")
	}
	total := 0
	for _, mig := range plan {
		if mig.From != "weak" || mig.To != "strong" {
			t.Fatalf("wrong direction: %+v", mig)
		}
		total += mig.Count
	}
	if total > 50 {
		t.Fatalf("moved %d, surplus above weighted target is 50", total)
	}
}

func TestTargetsPowerWeighted(t *testing.T) {
	servers := []ServerState{
		{ID: "a", Power: 1},
		{ID: "b", Power: 2},
		{ID: "c", Power: 1},
	}
	got := Targets(servers, 100)
	if got["a"]+got["b"]+got["c"] != 100 {
		t.Fatalf("targets don't sum to n: %v", got)
	}
	if got["b"] != 50 || got["a"] != 25 || got["c"] != 25 {
		t.Fatalf("weighted targets = %v, want a=25 b=50 c=25", got)
	}
	// Homogeneous: plain averages with largest-remainder distribution.
	hom := Targets([]ServerState{{ID: "x"}, {ID: "y"}, {ID: "z"}}, 10)
	if hom["x"]+hom["y"]+hom["z"] != 10 {
		t.Fatalf("homogeneous targets don't sum: %v", hom)
	}
	for _, v := range hom {
		if v < 3 || v > 4 {
			t.Fatalf("homogeneous share %d outside 3..4: %v", v, hom)
		}
	}
	if len(Targets(nil, 5)) != 0 {
		t.Fatal("targets for empty group")
	}
}

func TestPlanMigrationsFillsMostUnderloadedFirst(t *testing.T) {
	mdl := rtfModel(t)
	servers := []ServerState{
		{ID: "hot", Users: 90},
		{ID: "mid", Users: 40},
		{ID: "cold", Users: 5},
	}
	plan := PlanMigrations(mdl, servers, 135, 0)
	if len(plan) == 0 {
		t.Fatal("no plan")
	}
	if plan[0].To != "cold" {
		t.Fatalf("first target = %q, want cold", plan[0].To)
	}
}

func TestPlanMigrationsDeterministicTieBreak(t *testing.T) {
	mdl := rtfModel(t)
	servers := []ServerState{
		{ID: "b", Users: 60},
		{ID: "a", Users: 60},
		{ID: "c", Users: 0},
	}
	p1 := PlanMigrations(mdl, servers, 120, 0)
	p2 := PlanMigrations(mdl, []ServerState{servers[1], servers[0], servers[2]}, 120, 0)
	if len(p1) == 0 || len(p2) == 0 {
		t.Fatal("no plan")
	}
	if p1[0].From != "a" || p2[0].From != "a" {
		t.Fatalf("tie-break not deterministic: %v vs %v", p1, p2)
	}
}

func TestPlanMigrationsInvariantsProperty(t *testing.T) {
	mdl := rtfModel(t)
	prop := func(seed int64, count8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nServers := int(count8%6) + 2
		servers := make([]ServerState, nServers)
		n := 0
		for i := range servers {
			u := rng.Intn(120)
			servers[i] = ServerState{ID: string(rune('a' + i)), Users: u}
			n += u
		}
		plan := PlanMigrations(mdl, servers, n, 0)
		targets := Targets(servers, n)
		// Identify s_max (highest surplus) as the planner does.
		smax, best := "", -1<<30
		for _, s := range servers {
			if sp := s.Users - targets[s.ID]; sp > best || (sp == best && s.ID < smax) {
				smax, best = s.ID, sp
			}
		}
		users := make(map[string]int, nServers)
		for _, s := range servers {
			users[s.ID] = s.Users
		}
		total := 0
		for _, mig := range plan {
			if mig.From != smax || mig.Count <= 0 {
				return false
			}
			if users[mig.To] >= targets[mig.To] {
				return false // target was not under its share
			}
			if users[mig.To]+mig.Count > targets[mig.To] {
				return false // target overfilled beyond its share
			}
			users[mig.To] += mig.Count
			total += mig.Count
		}
		return total <= best || best <= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityHomogeneousMatchesModel(t *testing.T) {
	mdl := rtfModel(t)
	// One power-1 server: identical to Eq. (2).
	got, ok := Capacity(mdl, []ServerState{{ID: "a", Power: 1}}, 0)
	if !ok || got != 235 {
		t.Fatalf("capacity(1×1.0) = %d ok=%v, want 235", got, ok)
	}
	// Two power-1 servers: within rounding of n_max(2) = 332 (the integer
	// share split makes the group allocation slightly conservative).
	got, ok = Capacity(mdl, []ServerState{{ID: "a", Power: 1}, {ID: "b", Power: 1}}, 0)
	want, _ := mdl.MaxUsers(2, 0)
	if !ok || got < want-2 || got > want {
		t.Fatalf("capacity(2×1.0) = %d, want ≈%d", got, want)
	}
}

func TestCapacityCreditsStrongerMachines(t *testing.T) {
	mdl := rtfModel(t)
	base, _ := Capacity(mdl, []ServerState{{ID: "a", Power: 1}}, 0)
	boosted, _ := Capacity(mdl, []ServerState{{ID: "a", Power: 4}}, 0)
	if boosted <= base {
		t.Fatalf("4x machine capacity %d not above baseline %d", boosted, base)
	}
	mixed, _ := Capacity(mdl, []ServerState{{ID: "a", Power: 1}, {ID: "b", Power: 4}}, 0)
	pair, _ := Capacity(mdl, []ServerState{{ID: "a", Power: 1}, {ID: "b", Power: 1}}, 0)
	if mixed <= pair {
		t.Fatalf("mixed fleet capacity %d not above homogeneous %d", mixed, pair)
	}
	if _, ok := Capacity(mdl, nil, 0); ok {
		t.Fatal("capacity of empty group reported ok")
	}
}

func TestPlanDrainEvacuates(t *testing.T) {
	mdl := rtfModel(t)
	servers := []ServerState{
		{ID: "stay1", Users: 50},
		{ID: "stay2", Users: 90},
		{ID: "gone", Users: 30, Draining: true},
	}
	plan := PlanDrain(mdl, servers, "gone", 170, 0)
	if len(plan) == 0 {
		t.Fatal("no drain plan")
	}
	total := 0
	for _, mig := range plan {
		if mig.From != "gone" {
			t.Fatalf("drain from wrong server: %+v", mig)
		}
		total += mig.Count
	}
	if total > 30 {
		t.Fatalf("drained %d users, server only had 30", total)
	}
	// Least-loaded target is filled first.
	if plan[0].To != "stay1" {
		t.Fatalf("first drain target = %q, want stay1", plan[0].To)
	}
}

func TestPlanDrainEdgeCases(t *testing.T) {
	mdl := rtfModel(t)
	if plan := PlanDrain(mdl, []ServerState{{ID: "only", Users: 10}}, "only", 10, 0); plan != nil {
		t.Fatal("drain planned with no targets")
	}
	servers := []ServerState{{ID: "a", Users: 0}, {ID: "b", Users: 10}}
	if plan := PlanDrain(mdl, servers, "a", 10, 0); plan != nil {
		t.Fatal("drain planned for empty server")
	}
	if plan := PlanDrain(mdl, servers, "ghost", 10, 0); plan != nil {
		t.Fatal("drain planned for unknown server")
	}
}
