// Package traffic models the network bandwidth of a ROIA server as a
// function of its user count — the extension the paper names as future
// work ("we still need to implement bandwidth analysis for our
// scalability model", Section VI).
//
// Two observations from the literature the paper cites shape the model:
//
//   - bandwidth correlates strongly with the user count (Kim et al.), so
//     the same approximation-function machinery used for CPU times
//     applies: per-tick bytes are fitted as polynomials of n;
//   - game-server traffic is asymmetric — state updates fan out to every
//     user while inputs are small, so outbound bandwidth dominates.
//
// Samples come from the RTF monitoring hooks (monitor.TrafficSample, wire
// payload bytes counted per tick) and are fitted with the same
// least-squares pipeline as the CPU parameters. The fitted Model answers
// the operational questions: expected bandwidth at a given population,
// the in/out asymmetry, and the bandwidth a replica needs at the
// scalability model's capacity threshold n_max.
package traffic

import (
	"errors"
	"fmt"

	"roia/internal/fit"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rtf/monitor"
)

// Model predicts a server's per-tick wire bytes from the zone user count.
type Model struct {
	// In is the inbound bytes-per-tick curve (user inputs + replication
	// traffic received), Out the outbound curve (state updates fanning
	// out + replication traffic sent).
	In, Out params.Curve
}

// Fit builds a traffic model from per-tick samples. Outbound traffic is
// fitted quadratically by default (every user receives updates about
// every nearby user, so bytes grow superlinearly with density); inbound
// linearly (each user sends a bounded number of inputs per tick).
// At least three distinct user counts are required.
func Fit(samples []monitor.TrafficSample) (*Model, error) {
	return FitDegrees(samples, 1, 2)
}

// FitDegrees fits with explicit polynomial degrees for the inbound and
// outbound curves.
func FitDegrees(samples []monitor.TrafficSample, degIn, degOut int) (*Model, error) {
	if len(samples) == 0 {
		return nil, errors.New("traffic: no samples")
	}
	xs := make([]float64, len(samples))
	ins := make([]float64, len(samples))
	outs := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = float64(s.Users)
		ins[i] = float64(s.BytesIn)
		outs[i] = float64(s.BytesOut)
	}
	inFit, err := fit.Polyfit(xs, ins, degIn)
	if err != nil {
		return nil, fmt.Errorf("traffic: inbound fit: %w", err)
	}
	outFit, err := fit.Polyfit(xs, outs, degOut)
	if err != nil {
		return nil, fmt.Errorf("traffic: outbound fit: %w", err)
	}
	return &Model{
		In:  params.Curve{Coeffs: inFit.Coeffs},
		Out: params.Curve{Coeffs: outFit.Coeffs},
	}, nil
}

// PerTick returns the predicted inbound and outbound bytes per tick for a
// server in a zone with n users.
func (m *Model) PerTick(n int) (in, out float64) {
	return m.In.Eval(float64(n)), m.Out.Eval(float64(n))
}

// BandwidthBPS converts the per-tick prediction into bytes per second at
// the given tick rate (e.g. 25 Hz for a 40 ms tick).
func (m *Model) BandwidthBPS(n int, tickHz float64) (in, out float64) {
	i, o := m.PerTick(n)
	return i * tickHz, o * tickHz
}

// Asymmetry returns the outbound/inbound byte ratio at n users — the
// asymmetry of Kim et al.'s traffic analysis. It returns 0 when inbound
// traffic is predicted to be zero.
func (m *Model) Asymmetry(n int) float64 {
	in, out := m.PerTick(n)
	if in <= 0 {
		return 0
	}
	return out / in
}

// MaxUsersWithinBandwidth returns the largest zone user count whose
// predicted outbound bandwidth stays below a per-replica NIC budget (bytes
// per second) at the given tick rate — the bandwidth counterpart of the
// scalability model's n_max. The prediction holds for the replica
// configuration the model was fitted on (the fitted curves fold the
// measured active/total-user split into the n-dependence). ok is false if
// the budget is never reached within the search cap.
func (m *Model) MaxUsersWithinBandwidth(nicBPS, tickHz float64) (int, bool) {
	if nicBPS <= 0 || tickHz <= 0 {
		return 0, true
	}
	const cap = 1 << 20
	over := func(n int) bool {
		_, out := m.BandwidthBPS(n, tickHz)
		return out >= nicBPS
	}
	if !over(cap) {
		return cap, false
	}
	if over(0) {
		return 0, true
	}
	lo, hi := 0, cap // invariant: !over(lo), over(hi)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if over(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, true
}

// AtCapacity evaluates the bandwidth a replica needs when the zone is at
// the scalability model's capacity threshold n_max(l): the paper's remark
// that capacity thresholds are "also suitable for modelling network
// traffic" made operational. ok is false if the capacity itself is
// unbounded within the scalability model's search cap.
func (m *Model) AtCapacity(sm *model.Model, l int, tickHz float64) (in, out float64, ok bool) {
	nmax, ok := sm.MaxUsers(l, 0)
	if !ok {
		return 0, 0, false
	}
	in, out = m.BandwidthBPS(nmax, tickHz)
	return in, out, true
}
