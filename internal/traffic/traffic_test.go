package traffic

import (
	"math"
	"testing"

	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rtf/monitor"
)

// synth generates exact samples from known generating polynomials:
// in = 40n, out = 2n² + 100n.
func synth(counts []int) []monitor.TrafficSample {
	out := make([]monitor.TrafficSample, 0, len(counts))
	for _, n := range counts {
		out = append(out, monitor.TrafficSample{
			Users:    n,
			BytesIn:  40 * n,
			BytesOut: 2*n*n + 100*n,
		})
	}
	return out
}

func TestFitRecoversGeneratingCurves(t *testing.T) {
	m, err := Fit(synth([]int{10, 50, 100, 150, 200, 250, 300}))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{20, 120, 280} {
		in, out := m.PerTick(n)
		if math.Abs(in-float64(40*n)) > 1 {
			t.Fatalf("in(%d) = %g, want %d", n, in, 40*n)
		}
		if math.Abs(out-float64(2*n*n+100*n)) > 1 {
			t.Fatalf("out(%d) = %g, want %d", n, out, 2*n*n+100*n)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("empty samples accepted")
	}
	// Two points cannot determine a quadratic outbound curve.
	if _, err := Fit(synth([]int{10, 20})); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
}

func TestBandwidthBPSScalesWithTickRate(t *testing.T) {
	m, err := Fit(synth([]int{10, 50, 100, 200, 300}))
	if err != nil {
		t.Fatal(err)
	}
	in1, out1 := m.BandwidthBPS(100, 25)
	in2, out2 := m.BandwidthBPS(100, 50)
	if math.Abs(in2-2*in1) > 1e-6 || math.Abs(out2-2*out1) > 1e-6 {
		t.Fatal("bandwidth not linear in tick rate")
	}
}

func TestAsymmetryOutboundDominates(t *testing.T) {
	m, err := Fit(synth([]int{10, 50, 100, 200, 300}))
	if err != nil {
		t.Fatal(err)
	}
	// out/in = (2n²+100n)/(40n) — grows with n and exceeds 1 beyond n=20.
	if a := m.Asymmetry(100); math.Abs(a-(2*100.0*100+100*100)/(40*100)) > 0.01 {
		t.Fatalf("asymmetry(100) = %g", a)
	}
	if m.Asymmetry(50) >= m.Asymmetry(300) {
		t.Fatal("asymmetry should grow with user count for quadratic out")
	}
	zero := &Model{In: params.Constant(0), Out: params.Linear(1, 1)}
	if zero.Asymmetry(10) != 0 {
		t.Fatal("zero inbound should report 0 asymmetry")
	}
}

func TestMaxUsersWithinBandwidth(t *testing.T) {
	m, err := Fit(synth([]int{10, 50, 100, 200, 300}))
	if err != nil {
		t.Fatal(err)
	}
	// out(n) = 2n²+100n bytes/tick; at 25 Hz a 10 MB/s NIC caps n where
	// (2n²+100n)·25 >= 1e7 → 2n²+100n >= 4e5 → n ≈ 423.
	n, ok := m.MaxUsersWithinBandwidth(1e7, 25)
	if !ok {
		t.Fatal("budget never reached")
	}
	if n < 400 || n > 450 {
		t.Fatalf("bandwidth capacity = %d, want ≈423", n)
	}
	// The boundary is exact: n fits, n+1 does not.
	_, outN := m.BandwidthBPS(n, 25)
	_, outN1 := m.BandwidthBPS(n+1, 25)
	if outN >= 1e7 || outN1 < 1e7 {
		t.Fatalf("boundary wrong: out(%d)=%g out(%d)=%g", n, outN, n+1, outN1)
	}
	// A huge budget is unbounded within the cap.
	if _, ok := m.MaxUsersWithinBandwidth(1e18, 25); ok {
		t.Fatal("unreachable budget reported bounded")
	}
	// Degenerate budgets.
	if n, ok := m.MaxUsersWithinBandwidth(0, 25); n != 0 || !ok {
		t.Fatalf("zero budget: %d %v", n, ok)
	}
}

func TestAtCapacity(t *testing.T) {
	tm, err := Fit(synth([]int{10, 50, 100, 200, 300}))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := model.New(params.RTFDemo(), params.UFirstPersonShooter, params.CDefault)
	if err != nil {
		t.Fatal(err)
	}
	in, out, ok := tm.AtCapacity(sm, 1, 25)
	if !ok {
		t.Fatal("capacity unbounded")
	}
	// n_max(1) = 235: in = 40·235·25, out = (2·235²+100·235)·25.
	if math.Abs(in-40*235*25) > 25 {
		t.Fatalf("in at capacity = %g", in)
	}
	if math.Abs(out-float64(2*235*235+100*235)*25) > 25 {
		t.Fatalf("out at capacity = %g", out)
	}
	// Unbounded case: a model whose costs are zero.
	free, _ := model.New(&params.Set{Name: "free", UA: params.Constant(1e-12)}, 40, 0.15)
	free.UserCap = 1000
	if _, _, ok := tm.AtCapacity(free, 1, 25); ok {
		t.Fatal("unbounded capacity reported ok")
	}
}
