package cloud

import (
	"errors"
	"math"
	"testing"
)

func testProvider() *Provider {
	return NewProvider(
		Class{Name: "std", Power: 1, StartupDelay: 30, CostPerSecond: 0.01, Capacity: 3},
		Class{Name: "big", Power: 2, StartupDelay: 60, CostPerSecond: 0.05},
		Class{Name: "huge", Power: 4, StartupDelay: 60, CostPerSecond: 0.02},
	)
}

func TestLeaseLifecycle(t *testing.T) {
	p := testProvider()
	r, err := p.Lease("std", 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ready(100) || r.Ready(129.9) {
		t.Fatal("resource ready before startup delay")
	}
	if !r.Ready(130) {
		t.Fatal("resource not ready after startup delay")
	}
	if p.ActiveCount() != 1 {
		t.Fatalf("active = %d", p.ActiveCount())
	}
	if err := p.Release(r.ID, 200); err != nil {
		t.Fatal(err)
	}
	if p.ActiveCount() != 0 {
		t.Fatal("release did not free the resource")
	}
	if r.Ready(300) {
		t.Fatal("released resource still ready")
	}
	if err := p.Release(r.ID, 201); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestLeaseUnknownClass(t *testing.T) {
	p := testProvider()
	if _, err := p.Lease("nope", 0); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("err = %v, want ErrUnknownClass", err)
	}
}

func TestCapacityEnforced(t *testing.T) {
	p := testProvider()
	for i := 0; i < 3; i++ {
		if _, err := p.Lease("std", 0); err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
	}
	if _, err := p.Lease("std", 0); !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
	// Unlimited class keeps leasing.
	for i := 0; i < 10; i++ {
		if _, err := p.Lease("big", 0); err != nil {
			t.Fatalf("unlimited lease %d: %v", i, err)
		}
	}
	if p.TotalLeases() != 13 {
		t.Fatalf("total leases = %d", p.TotalLeases())
	}
}

func TestCapacityFreedByRelease(t *testing.T) {
	p := testProvider()
	var last *Resource
	for i := 0; i < 3; i++ {
		last, _ = p.Lease("std", 0)
	}
	if err := p.Release(last.ID, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Lease("std", 20); err != nil {
		t.Fatalf("lease after release: %v", err)
	}
}

func TestCostAccounting(t *testing.T) {
	p := testProvider()
	a, _ := p.Lease("std", 0)  // 0.01/s
	_, _ = p.Lease("big", 100) // 0.05/s
	if err := p.Release(a.ID, 50); err != nil {
		t.Fatal(err)
	}
	// At t=200: released std ran 50 s (0.5), big has run 100 s (5.0).
	if got := p.Cost(200); math.Abs(got-5.5) > 1e-9 {
		t.Fatalf("cost = %g, want 5.5", got)
	}
}

func TestStrongerClassPicksCheapest(t *testing.T) {
	p := testProvider()
	got, err := p.StrongerClass("std")
	if err != nil {
		t.Fatal(err)
	}
	// "huge" (power 4, 0.02/s) is cheaper than "big" (power 2, 0.05/s).
	if got.Name != "huge" {
		t.Fatalf("stronger class = %q, want huge", got.Name)
	}
	if _, err := p.StrongerClass("huge"); !errors.Is(err, ErrNoStrongerClass) {
		t.Fatalf("err = %v, want ErrNoStrongerClass", err)
	}
	if _, err := p.StrongerClass("nope"); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("err = %v, want ErrUnknownClass", err)
	}
}

func TestDefaultClassesSane(t *testing.T) {
	p := NewProvider(DefaultClasses()...)
	if len(p.Classes()) != 3 {
		t.Fatalf("classes = %d", len(p.Classes()))
	}
	if _, err := p.StrongerClass("standard"); err != nil {
		t.Fatalf("no substitution path from standard: %v", err)
	}
}

func TestDuplicateClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate class")
		}
	}()
	NewProvider(Class{Name: "a"}, Class{Name: "a"})
}

func TestZeroPowerDefaultsToOne(t *testing.T) {
	p := NewProvider(Class{Name: "weird"})
	if got := p.Classes()[0].Power; got != 1 {
		t.Fatalf("power = %g, want default 1", got)
	}
}
