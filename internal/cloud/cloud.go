// Package cloud simulates the on-demand resource leasing substrate the
// paper targets ("Cloud Computing offers cost-efficient leasing resources
// on demand", Section I). RTF-RMS leases application servers from a
// Provider, which models resource classes of different computational
// power, finite capacity, provisioning (startup) delay, and accrued cost.
//
// The provider is driven by an explicit clock (seconds as float64) rather
// than wall time, so simulated sessions are deterministic and can run
// thousands of times faster than real time.
package cloud

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Class describes one resource type on offer.
type Class struct {
	// Name identifies the class (e.g. "standard", "highcpu").
	Name string
	// Power is the relative computational power; per-item CPU times of the
	// scalability model scale with 1/Power. The baseline class has
	// Power 1.0; a substitution target has Power > 1.
	Power float64
	// StartupDelay is the seconds between Lease and the resource becoming
	// ready (cloud provisioning latency).
	StartupDelay float64
	// CostPerSecond is the leasing price while held.
	CostPerSecond float64
	// Capacity limits how many instances can be leased concurrently;
	// 0 means unlimited.
	Capacity int
}

// Errors returned by the provider.
var (
	// ErrUnknownClass reports a lease request for an unregistered class.
	ErrUnknownClass = errors.New("cloud: unknown resource class")
	// ErrCapacity reports class exhaustion.
	ErrCapacity = errors.New("cloud: class capacity exhausted")
	// ErrNoStrongerClass reports that resource substitution is impossible
	// because no class more powerful than the current one exists — the
	// paper's "critical user density" condition requiring app redesign.
	ErrNoStrongerClass = errors.New("cloud: no more powerful resource class available")
)

// Resource is one leased instance.
type Resource struct {
	// ID is unique per provider.
	ID string
	// Class is the resource type.
	Class Class
	// LeasedAt and ReadyAt delimit provisioning.
	LeasedAt, ReadyAt float64
	// ReleasedAt is set on release (NaN-free: valid only if released).
	ReleasedAt float64
	released   bool
}

// Ready reports whether the resource has finished provisioning at time now.
func (r *Resource) Ready(now float64) bool { return !r.released && now >= r.ReadyAt }

// Provider leases resources.
type Provider struct {
	mu      sync.Mutex
	classes map[string]Class
	order   []string
	active  map[string]*Resource
	nextID  int
	// cost accumulated from released leases; active leases priced on query.
	releasedCost float64
	leases       int
}

// NewProvider returns a provider offering the given classes. It panics on
// duplicate class names (static configuration error).
func NewProvider(classes ...Class) *Provider {
	p := &Provider{
		classes: make(map[string]Class, len(classes)),
		active:  make(map[string]*Resource),
	}
	for _, c := range classes {
		if _, dup := p.classes[c.Name]; dup {
			panic(fmt.Sprintf("cloud: duplicate class %q", c.Name))
		}
		if c.Power <= 0 {
			c.Power = 1
		}
		p.classes[c.Name] = c
		p.order = append(p.order, c.Name)
	}
	return p
}

// DefaultClasses mirrors a small public-cloud menu: a baseline class and
// two stronger substitution targets.
func DefaultClasses() []Class {
	return []Class{
		{Name: "standard", Power: 1.0, StartupDelay: 30, CostPerSecond: 0.01},
		{Name: "highcpu", Power: 2.0, StartupDelay: 30, CostPerSecond: 0.025},
		{Name: "highcpu2x", Power: 4.0, StartupDelay: 45, CostPerSecond: 0.06},
	}
}

// Classes returns the offered classes in registration order.
func (p *Provider) Classes() []Class {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Class, 0, len(p.order))
	for _, n := range p.order {
		out = append(out, p.classes[n])
	}
	return out
}

// Lease acquires one instance of the named class at time now.
func (p *Provider) Lease(class string, now float64) (*Resource, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.classes[class]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownClass, class)
	}
	if c.Capacity > 0 {
		inUse := 0
		for _, r := range p.active {
			if r.Class.Name == class {
				inUse++
			}
		}
		if inUse >= c.Capacity {
			return nil, fmt.Errorf("%w: %s", ErrCapacity, class)
		}
	}
	p.nextID++
	p.leases++
	r := &Resource{
		ID:       fmt.Sprintf("%s-%d", class, p.nextID),
		Class:    c,
		LeasedAt: now,
		ReadyAt:  now + c.StartupDelay,
	}
	p.active[r.ID] = r
	return r, nil
}

// LeaseReady acquires an instance that is ready immediately, bypassing the
// startup delay — for resources provisioned before session start.
func (p *Provider) LeaseReady(class string, now float64) (*Resource, error) {
	r, err := p.Lease(class, now)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	r.ReadyAt = now
	p.mu.Unlock()
	return r, nil
}

// Release returns an instance at time now. Releasing twice or releasing an
// unknown resource is an error.
func (p *Provider) Release(id string, now float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.active[id]
	if !ok {
		return fmt.Errorf("cloud: release of unknown resource %q", id)
	}
	delete(p.active, id)
	r.released = true
	r.ReleasedAt = now
	if now > r.LeasedAt {
		p.releasedCost += (now - r.LeasedAt) * r.Class.CostPerSecond
	}
	return nil
}

// StrongerClass returns the cheapest class strictly more powerful than the
// given one, for the resource-substitution action.
func (p *Provider) StrongerClass(current string) (Class, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur, ok := p.classes[current]
	if !ok {
		return Class{}, fmt.Errorf("%w: %s", ErrUnknownClass, current)
	}
	var candidates []Class
	for _, c := range p.classes {
		if c.Power > cur.Power {
			candidates = append(candidates, c)
		}
	}
	if len(candidates) == 0 {
		return Class{}, ErrNoStrongerClass
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].CostPerSecond != candidates[j].CostPerSecond {
			return candidates[i].CostPerSecond < candidates[j].CostPerSecond
		}
		return candidates[i].Power < candidates[j].Power
	})
	return candidates[0], nil
}

// ActiveCount reports the number of currently-leased instances.
func (p *Provider) ActiveCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.active)
}

// TotalLeases reports how many leases were ever made.
func (p *Provider) TotalLeases() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.leases
}

// Cost reports the total accrued cost at time now: completed leases plus
// the running cost of active ones.
func (p *Provider) Cost(now float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.releasedCost
	for _, r := range p.active {
		if now > r.LeasedAt {
			total += (now - r.LeasedAt) * r.Class.CostPerSecond
		}
	}
	return total
}
