package params

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCurveEvalHorner(t *testing.T) {
	c := Quadratic(1, 2, 3) // 1 + 2x + 3x²
	if got := c.Eval(2); got != 17 {
		t.Fatalf("Eval(2) = %g, want 17", got)
	}
	if got := c.Eval(0); got != 1 {
		t.Fatalf("Eval(0) = %g, want 1", got)
	}
}

func TestCurveEvalClampsNegative(t *testing.T) {
	c := Linear(-5, 1) // negative below x=5
	if got := c.Eval(2); got != 0 {
		t.Fatalf("Eval(2) = %g, want 0 (clamped)", got)
	}
	if got := c.Eval(10); got != 5 {
		t.Fatalf("Eval(10) = %g, want 5", got)
	}
}

func TestCurveEvalNaNClamps(t *testing.T) {
	c := Curve{Coeffs: []float64{math.NaN()}}
	if got := c.Eval(1); got != 0 {
		t.Fatalf("Eval on NaN curve = %g, want 0", got)
	}
}

func TestCurveDegree(t *testing.T) {
	if d := (Curve{}).Degree(); d != 0 {
		t.Fatalf("empty curve degree = %d, want 0", d)
	}
	if d := Constant(3).Degree(); d != 0 {
		t.Fatalf("constant degree = %d, want 0", d)
	}
	if d := Linear(1, 2).Degree(); d != 1 {
		t.Fatalf("linear degree = %d, want 1", d)
	}
	if d := Quadratic(1, 2, 3).Degree(); d != 2 {
		t.Fatalf("quadratic degree = %d, want 2", d)
	}
}

func TestCurveString(t *testing.T) {
	s := Quadratic(3, 2, 1).String()
	for _, want := range []string{"x^2", "x", "3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	if got := (Curve{}).String(); got != "0" {
		t.Fatalf("empty curve String() = %q, want 0", got)
	}
}

func TestCurveEvalNonNegativeProperty(t *testing.T) {
	prop := func(c0, c1, c2, x float64) bool {
		c := Quadratic(c0, c1, c2)
		return c.Eval(x) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetEncodeDecodeRoundTrip(t *testing.T) {
	orig := RTFDemo()
	data, err := orig.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Name != orig.Name {
		t.Fatalf("Name = %q, want %q", got.Name, orig.Name)
	}
	for _, n := range []int{0, 1, 50, 235, 300} {
		if got.ActivePerUser(n, 0) != orig.ActivePerUser(n, 0) {
			t.Fatalf("ActivePerUser(%d) changed after round trip", n)
		}
		if got.MigIniAt(n) != orig.MigIniAt(n) {
			t.Fatalf("MigIniAt(%d) changed after round trip", n)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("Decode accepted malformed JSON")
	}
}

func TestValidate(t *testing.T) {
	if err := RTFDemo().Validate(1000); err != nil {
		t.Fatalf("RTFDemo invalid: %v", err)
	}
	if err := RPG().Validate(10000); err != nil {
		t.Fatalf("RPG invalid: %v", err)
	}
	var nilSet *Set
	if err := nilSet.Validate(10); err == nil {
		t.Fatal("nil set validated")
	}
	bad := RTFDemo()
	bad.UA = Curve{Coeffs: []float64{math.NaN()}}
	if err := bad.Validate(1000); err == nil {
		t.Fatal("NaN coefficient validated")
	}
	zero := &Set{Name: "zero"}
	if err := zero.Validate(1000); err == nil {
		t.Fatal("all-zero active cost validated")
	}
}

func TestRTFDemoShapeMatchesPaper(t *testing.T) {
	s := RTFDemo()
	// Section V-A: t_ua and t_aoi are quadratic; the (de)serialization,
	// state-update and migration parameters are linear.
	if s.UA.Degree() != 2 || s.AOI.Degree() != 2 {
		t.Fatal("t_ua / t_aoi must be quadratic")
	}
	for name, c := range map[string]Curve{
		"ua_deser": s.UADeser, "su": s.SU, "fa": s.FA,
		"fa_deser": s.FADeser, "mig_ini": s.MigIni, "mig_rcv": s.MigRcv,
	} {
		if c.Degree() != 1 {
			t.Fatalf("%s degree = %d, want 1 (linear)", name, c.Degree())
		}
	}
	// Initiating a migration is more expensive than receiving one (Fig. 6).
	for _, n := range []int{10, 80, 180, 300} {
		if s.MigIniAt(n) <= s.MigRcvAt(n) {
			t.Fatalf("t_mig_ini(%d)=%g <= t_mig_rcv(%d)=%g, want ini > rcv",
				n, s.MigIniAt(n), n, s.MigRcvAt(n))
		}
	}
	// Forwarded-input processing is much cheaper than active-user
	// processing ("very short CPU time ... compared to the other
	// parameters", Section V-A).
	for _, n := range []int{50, 235, 300} {
		if s.ShadowPerUser(n, 0) >= s.ActivePerUser(n, 0)/4 {
			t.Fatalf("shadow cost at n=%d not small relative to active cost", n)
		}
	}
}

func TestRTFDemoMigrationAnchors(t *testing.T) {
	s := RTFDemo()
	// Section V-A worked example: t_mig_ini(180) = 1.4 ms so a server at a
	// 35 ms tick can initiate 3 migrations/s; t_mig_rcv(80) = 0.73 ms so a
	// server at a 15 ms tick can receive 34/s.
	if got := s.MigIniAt(180); math.Abs(got-1.4) > 1e-9 {
		t.Fatalf("t_mig_ini(180) = %g, want 1.4", got)
	}
	if got := s.MigRcvAt(80); math.Abs(got-0.73) > 1e-9 {
		t.Fatalf("t_mig_rcv(80) = %g, want 0.73", got)
	}
}

func TestRPGCheaperInputsThanFPS(t *testing.T) {
	fps, rpg := RTFDemo(), RPG()
	// Section III-C: role-playing input processing is simpler (lower t_ua),
	// and the much higher threshold U yields far higher capacity.
	for _, n := range []int{100, 235, 500} {
		if rpg.UAAt(n, 0) >= fps.UAAt(n, 0) {
			t.Fatalf("RPG t_ua(%d)=%g not below FPS %g", n, rpg.UAAt(n, 0), fps.UAAt(n, 0))
		}
	}
}
