package params

// Default tick-duration thresholds (ms) for the application classes the
// paper discusses in Section III-C.
const (
	// UFirstPersonShooter is the threshold for fast-paced action games:
	// 25 state updates per second, i.e. a 40 ms tick (Section V, RTFDemo).
	UFirstPersonShooter = 40.0
	// URolePlaying is the upper bound the paper cites for online
	// role-playing games, which tolerate response times up to 1.5 s.
	URolePlaying = 1500.0
	// CDefault is the "compromise" minimum-improvement factor chosen for
	// RTFDemo in Section V-A (yields l_max = 8).
	CDefault = 0.15
)

// RTFDemo returns the calibrated parameter profile of the RTFDemo
// first-person shooter, the paper's case-study application.
//
// The coefficients were produced by tools/paramtune so that, at
// U = 40 ms, c = 0.15 and m = 0, the profile reproduces the paper's anchor
// numbers exactly:
//
//	n_max(1)          = 235 users      (§V-A)
//	replication trig. = 188 users      (80 % of n_max)
//	l_max(c = 0.15)   = 8 replicas     (§V-A)
//	l_max(c = 0.05)   = 48 replicas    (§V-A)
//	l_max(c = 1.0)    = 1 replica      (§V-A)
//	t_mig_ini(180)    = 1.4 ms  → 3 migrations/s of 5 ms headroom (§V-A)
//	t_mig_rcv(80)     = 0.73 ms → 34 migrations/s of 25 ms headroom (§V-A)
//
// Curve shapes follow Section V-A: quadratic t_ua and t_aoi (attack
// processing and the Euclidean-distance interest management both iterate
// over all users), linear t_ua_dser, t_su, t_fa, t_fa_dser, t_mig_ini and
// t_mig_rcv, and t_mig_ini > t_mig_rcv. Absolute magnitudes are anchored to
// the thresholds above rather than to the authors' Core Duo testbed.
// The anchor values are locked in by tests; regenerate with
// `go run ./tools/paramtune` if the anchors or shapes ever change.
func RTFDemo() *Set {
	return &Set{
		Name:    "rtfdemo-fps",
		UADeser: Linear(0.005, 0.00004),
		UA:      Quadratic(0.004589, 0.0002394442316181948, 9e-8),
		FADeser: Linear(0.0024085530, 2e-7),
		FA:      Linear(0.0036128296, 3e-7),
		NPC:     Linear(0.02, 0.00005),
		AOI:     Quadratic(0.006, 0.00019590891677852298, 1.1e-7),
		SU:      Linear(0.012, 0.00008),
		MigIni:  Linear(0.5, 0.005),
		MigRcv:  Linear(0.33, 0.005),
		// Modest contention with a small coherency tail: the tick
		// pipeline's merge points serialize ~8 % of the parallel work and
		// worker crosstalk grows slowly. Placeholder magnitudes until a
		// multi-core calibration sweep (calibrate.FitParallel) replaces
		// them; w = 1 predictions are unaffected, so every paper anchor
		// above still holds exactly.
		Parallel: USL{Sigma: 0.08, Kappa: 0.002},
	}
}

// RPG returns a parameter profile representative of an online role-playing
// game (Section III-C): explicit target selection and a fixed interaction
// set make input application cheap and linear, state updates are smaller,
// and the tolerable tick duration is far higher. With U = URolePlaying this
// profile yields thresholds orders of magnitude above the FPS profile,
// matching the paper's qualitative comparison.
func RPG() *Set {
	return &Set{
		Name:    "rpg",
		UADeser: Linear(0.004, 0.00002),
		UA:      Linear(0.02, 0.00006),
		FADeser: Linear(0.002, 1e-7),
		FA:      Linear(0.003, 2e-7),
		NPC:     Linear(0.05, 0.00002),
		AOI:     Quadratic(0.01, 0.0001, 2e-8),
		SU:      Linear(0.02, 0.00004),
		MigIni:  Linear(0.8, 0.004),
		MigRcv:  Linear(0.5, 0.003),
	}
}
