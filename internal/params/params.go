// Package params defines the application-specific parameter sets of the
// scalability model: one CPU-time approximation function per computational
// task of the real-time loop (Section III-A of the paper), plus the user
// migration overheads (Section III-B).
//
// All times are expressed in milliseconds, matching the paper's use of the
// tick-duration threshold U in ms (e.g. U = 40 ms for 25 updates/s).
//
// A parameter Set is what the calibration pipeline (internal/calibrate)
// produces from measured samples, and what the scalability model
// (internal/model) consumes.
package params

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
)

// Curve is a polynomial approximation function f(x) = Σ Coeffs[i]·x^i, the
// function family the paper fits with the Levenberg–Marquardt algorithm
// (linear for (de)serialization and migration costs, quadratic for input
// application and area-of-interest computation in RTFDemo).
type Curve struct {
	// Coeffs[i] is the coefficient of x^i, in milliseconds.
	Coeffs []float64 `json:"coeffs"`
}

// Linear returns the curve intercept + slope·x.
func Linear(intercept, slope float64) Curve {
	return Curve{Coeffs: []float64{intercept, slope}}
}

// Quadratic returns the curve c0 + c1·x + c2·x².
func Quadratic(c0, c1, c2 float64) Curve {
	return Curve{Coeffs: []float64{c0, c1, c2}}
}

// Constant returns the curve that always evaluates to v.
func Constant(v float64) Curve {
	return Curve{Coeffs: []float64{v}}
}

// Eval evaluates the curve at x using Horner's scheme. Negative results are
// clamped to zero: a fitted curve may dip below zero outside the measured
// range, but a CPU time cannot.
func (c Curve) Eval(x float64) float64 {
	v := 0.0
	for i := len(c.Coeffs) - 1; i >= 0; i-- {
		v = v*x + c.Coeffs[i]
	}
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// Degree reports the polynomial degree (0 for a constant or empty curve).
func (c Curve) Degree() int {
	if len(c.Coeffs) == 0 {
		return 0
	}
	return len(c.Coeffs) - 1
}

// String renders the curve in human-readable polynomial form.
func (c Curve) String() string {
	if len(c.Coeffs) == 0 {
		return "0"
	}
	var b strings.Builder
	for i := len(c.Coeffs) - 1; i >= 0; i-- {
		if b.Len() > 0 {
			b.WriteString(" + ")
		}
		switch i {
		case 0:
			fmt.Fprintf(&b, "%.6g", c.Coeffs[i])
		case 1:
			fmt.Fprintf(&b, "%.6g·x", c.Coeffs[i])
		default:
			fmt.Fprintf(&b, "%.6g·x^%d", c.Coeffs[i], i)
		}
	}
	return b.String()
}

// Set holds every application-specific parameter of the scalability model
// for one ROIA. Each per-task curve maps the total user count n of a zone to
// the per-item CPU time in milliseconds; NPC maps n to the per-NPC update
// time. MigIni and MigRcv map the user count of the involved server to the
// per-migration initiate/receive overhead.
//
// Set satisfies the model.CostModel interface.
type Set struct {
	// Name identifies the profile (e.g. "rtfdemo-fps").
	Name string `json:"name"`

	// UADeser is t_ua_dser: asynchronous reception and deserialization of
	// one connected user's inputs.
	UADeser Curve `json:"ua_deser"`
	// UA is t_ua: validating and applying one user's inputs.
	UA Curve `json:"ua"`
	// FADeser is t_fa_dser: reception and deserialization of one forwarded
	// input from another replica.
	FADeser Curve `json:"fa_deser"`
	// FA is t_fa: applying one forwarded input.
	FA Curve `json:"fa"`
	// NPC is t_npc: updating one computer-controlled character.
	NPC Curve `json:"npc"`
	// AOI is t_aoi: computing the area of interest of one user.
	AOI Curve `json:"aoi"`
	// SU is t_su: computing and serializing the state update for one user.
	SU Curve `json:"su"`

	// MigIni is t_mig_ini: initiating one user migration on the source.
	MigIni Curve `json:"mig_ini"`
	// MigRcv is t_mig_rcv: receiving one user migration on the target.
	MigRcv Curve `json:"mig_rcv"`

	// Parallel holds the intra-replica USL coefficients σ, κ fitted from
	// parallel-executor calibration sweeps (internal/calibrate.FitParallel).
	// The zero value models a sequential tick pipeline.
	Parallel USL `json:"parallel,omitempty"`
}

// USL is the Universal-Scalability-Law coefficient pair of the tick
// pipeline's speedup term S(w) = w / (1 + σ(w−1) + κ·w·(w−1)); see
// model.Par for the derivation and internal/fit.FitUSL for the fit.
type USL struct {
	// Sigma is the contention coefficient σ ≥ 0.
	Sigma float64 `json:"sigma"`
	// Kappa is the coherency coefficient κ ≥ 0.
	Kappa float64 `json:"kappa"`
}

// The per-task accessors below implement model.CostModel. The paper writes
// every task time as t(n, m); in RTFDemo (and in our calibrated profiles)
// the dependence on the NPC count m is negligible for all tasks except the
// NPC update itself, so the curves are functions of n alone and m is
// accepted for interface fidelity.

// UADeserAt returns t_ua_dser(n, m) in ms.
func (s *Set) UADeserAt(n, m int) float64 { return s.UADeser.Eval(float64(n)) }

// UAAt returns t_ua(n, m) in ms.
func (s *Set) UAAt(n, m int) float64 { return s.UA.Eval(float64(n)) }

// FADeserAt returns t_fa_dser(n, m) in ms.
func (s *Set) FADeserAt(n, m int) float64 { return s.FADeser.Eval(float64(n)) }

// FAAt returns t_fa(n, m) in ms.
func (s *Set) FAAt(n, m int) float64 { return s.FA.Eval(float64(n)) }

// NPCAt returns t_npc(n, m) in ms.
func (s *Set) NPCAt(n, m int) float64 { return s.NPC.Eval(float64(n)) }

// AOIAt returns t_aoi(n, m) in ms.
func (s *Set) AOIAt(n, m int) float64 { return s.AOI.Eval(float64(n)) }

// SUAt returns t_su(n, m) in ms.
func (s *Set) SUAt(n, m int) float64 { return s.SU.Eval(float64(n)) }

// MigIniAt returns t_mig_ini(n) in ms.
func (s *Set) MigIniAt(n int) float64 { return s.MigIni.Eval(float64(n)) }

// MigRcvAt returns t_mig_rcv(n) in ms.
func (s *Set) MigRcvAt(n int) float64 { return s.MigRcv.Eval(float64(n)) }

// ActivePerUser returns the combined per-active-user cost
// t_ua_dser + t_ua + t_aoi + t_su at user count n, in ms.
func (s *Set) ActivePerUser(n, m int) float64 {
	return s.UADeserAt(n, m) + s.UAAt(n, m) + s.AOIAt(n, m) + s.SUAt(n, m)
}

// ShadowPerUser returns the combined per-shadow-entity cost
// t_fa_dser + t_fa at user count n, in ms.
func (s *Set) ShadowPerUser(n, m int) float64 {
	return s.FADeserAt(n, m) + s.FAAt(n, m)
}

// Validate checks the set for structural problems: missing curves for the
// four mandatory tasks, or curves that are negative over the supported user
// range [0, maxN].
func (s *Set) Validate(maxN int) error {
	if s == nil {
		return errors.New("params: nil set")
	}
	type named struct {
		name string
		c    Curve
	}
	curves := []named{
		{"ua_deser", s.UADeser}, {"ua", s.UA}, {"fa_deser", s.FADeser},
		{"fa", s.FA}, {"npc", s.NPC}, {"aoi", s.AOI}, {"su", s.SU},
		{"mig_ini", s.MigIni}, {"mig_rcv", s.MigRcv},
	}
	for _, nc := range curves {
		for _, co := range nc.c.Coeffs {
			if math.IsNaN(co) || math.IsInf(co, 0) {
				return fmt.Errorf("params: curve %s has non-finite coefficient", nc.name)
			}
		}
	}
	if math.IsNaN(s.Parallel.Sigma) || math.IsInf(s.Parallel.Sigma, 0) ||
		math.IsNaN(s.Parallel.Kappa) || math.IsInf(s.Parallel.Kappa, 0) {
		return errors.New("params: parallel USL coefficient is non-finite")
	}
	if s.Parallel.Sigma < 0 || s.Parallel.Kappa < 0 {
		return fmt.Errorf("params: parallel USL coefficients must be >= 0, got σ=%g κ=%g",
			s.Parallel.Sigma, s.Parallel.Kappa)
	}
	if s.ActivePerUser(1, 0) <= 0 {
		return errors.New("params: active per-user cost must be positive")
	}
	for _, n := range []int{0, 1, maxN / 2, maxN} {
		if s.ActivePerUser(n, 0) < 0 || s.ShadowPerUser(n, 0) < 0 {
			return fmt.Errorf("params: negative cost at n=%d", n)
		}
	}
	return nil
}

// MarshalJSON / UnmarshalJSON round-trip a Set through JSON so calibrated
// profiles can be stored next to the application.

// Encode serializes the set as indented JSON.
func (s *Set) Encode() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Decode parses a set previously produced by Encode.
func Decode(data []byte) (*Set, error) {
	var s Set
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("params: decode: %w", err)
	}
	return &s, nil
}
