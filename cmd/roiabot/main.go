// Command roiabot connects a swarm of computer-controlled bots to a
// running roiaserver over TCP — the paper's load-generation setup
// ("randomly interacting, computer-controlled bots"). Bots move and
// attack per their interactivity profile and transparently follow user
// migrations between replicas.
//
// Example:
//
//	roiabot -server s1=127.0.0.1:7001 -peers s2=127.0.0.1:7002 -bots 100 -duration 60s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"roia/internal/bots"
	"roia/internal/rtf/client"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/transport"
)

var (
	serverFlag   = flag.String("server", "s1=127.0.0.1:7001", "target server: id=host:port")
	peersFlag    = flag.String("peers", "", "additional replicas bots may be migrated to: id=host:port,...")
	botsFlag     = flag.Int("bots", 50, "number of bots")
	zoneFlag     = flag.Uint("zone", 1, "zone to join")
	profileFlag  = flag.String("profile", "default", "interactivity profile: passive, default, aggressive")
	stepFlag     = flag.Duration("step", 40*time.Millisecond, "bot decision interval")
	durationFlag = flag.Duration("duration", 0, "stop after this long (0 = run until interrupted)")
	seedFlag     = flag.Int64("seed", 1, "base random seed")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roiabot:", err)
		os.Exit(1)
	}
}

func profile() (bots.Profile, error) {
	switch *profileFlag {
	case "passive":
		return bots.PassiveProfile(), nil
	case "default":
		return bots.DefaultProfile(), nil
	case "aggressive":
		return bots.AggressiveProfile(), nil
	default:
		return bots.Profile{}, fmt.Errorf("unknown profile %q", *profileFlag)
	}
}

func run() error {
	prof, err := profile()
	if err != nil {
		return err
	}
	srvID, srvAddr, ok := strings.Cut(*serverFlag, "=")
	if !ok {
		return fmt.Errorf("bad -server %q (want id=host:port)", *serverFlag)
	}
	net := transport.NewTCP()
	net.Register(srvID, srvAddr)
	if *peersFlag != "" {
		for _, spec := range strings.Split(*peersFlag, ",") {
			id, addr, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok {
				return fmt.Errorf("bad -peers entry %q", spec)
			}
			net.Register(id, addr)
		}
	}

	swarm := make([]*bots.Bot, 0, *botsFlag)
	for i := 0; i < *botsFlag; i++ {
		node, err := net.Attach(fmt.Sprintf("bot-%d-%d", os.Getpid(), i+1), 1<<12)
		if err != nil {
			return err
		}
		defer node.Close()
		cl := client.New(node, srvID)
		pos := entity.Vec2{X: float64((i * 97) % 1000), Y: float64((i * 61) % 1000)}
		if err := cl.Join(uint32(*zoneFlag), pos, node.ID()); err != nil {
			return fmt.Errorf("join: %w", err)
		}
		swarm = append(swarm, bots.New(cl, prof, *seedFlag+int64(i)))
	}
	fmt.Printf("roiabot: %d bots (%s) against %s\n", len(swarm), *profileFlag, *serverFlag)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *durationFlag > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *durationFlag)
		defer cancel()
	}

	ticker := time.NewTicker(*stepFlag)
	defer ticker.Stop()
	statusEvery := time.NewTicker(5 * time.Second)
	defer statusEvery.Stop()
	for {
		select {
		case <-ctx.Done():
			report(swarm)
			return nil
		case <-statusEvery.C:
			report(swarm)
		case <-ticker.C:
			for _, b := range swarm {
				b.Step()
			}
		}
	}
}

func report(swarm []*bots.Bot) {
	joined, inputs, updates, migrations := 0, 0, uint64(0), 0
	for _, b := range swarm {
		if b.Client().Joined() {
			joined++
		}
		inputs += b.InputsSent()
		updates += b.Client().Updates()
		migrations += b.Client().Migrations()
	}
	fmt.Printf("bots=%d joined=%d inputs=%d updates=%d migrations-followed=%d\n",
		len(swarm), joined, inputs, updates, migrations)
}
