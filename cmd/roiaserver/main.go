// Command roiaserver runs one RTF application server over TCP, processing
// the RTFDemo-analogue shooter for one zone. Multiple roiaserver processes
// replicating the same zone exchange shadow updates and forwarded inputs;
// cmd/roiabot generates load against them.
//
// Example — two replicas of zone 1 on one machine:
//
//	roiaserver -id s1 -listen 127.0.0.1:7001 -peers s2=127.0.0.1:7002
//	roiaserver -id s2 -listen 127.0.0.1:7002 -peers s1=127.0.0.1:7001
//	roiabot    -server s1=127.0.0.1:7001 -bots 50
//
// The server prints a monitoring line once per second: connected users,
// zone users, mean tick duration, and the per-task model parameters
// measured by the RTF hooks.
//
// With -metrics the server also exposes an observability endpoint:
// Prometheus metrics (tick histogram, QoS deadline violations, windowed
// tail quantiles, hiccup counters, per-phase task profile, model-drift
// gauges — aggregate and per-task — cost attribution when -cost is on
// (per-stage allocation counters, GC pause totals and quantiles,
// per-type egress bytes, payload-size and AoI-churn quantiles), and Go
// runtime stats) on /metrics,
// the tick trace ring on /debug/ticktrace, flight-recorder captures as
// JSONL on /debug/flightrec, and pprof on /debug/pprof/. With -trace-out
// the trace ring is written as Chrome trace-event JSON at shutdown,
// loadable in Perfetto; with -flightrec-out the flight-recorder captures
// (pre/post windows around deadline-violating or hiccup ticks) are
// written as JSONL at shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"roia/internal/game"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rtf/aoi"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/monitor"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
)

var (
	idFlag      = flag.String("id", "s1", "server node ID (unique per session)")
	listenFlag  = flag.String("listen", "127.0.0.1:7001", "TCP listen address")
	zoneFlag    = flag.Uint("zone", 1, "zone ID this server processes")
	peersFlag   = flag.String("peers", "", "comma-separated peer replicas: id=host:port,...")
	tickFlag    = flag.Duration("tick", 40*time.Millisecond, "tick interval (40ms = 25Hz)")
	npcFlag     = flag.Int("npcs", 0, "NPCs to spawn on this server")
	prefixFlag  = flag.Uint("idprefix", 1, "entity-ID prefix (unique per server)")
	seedFlag    = flag.Int64("seed", 1, "random seed for the application logic")
	quietFlag   = flag.Bool("quiet", false, "suppress the per-second monitoring line")
	metricsFlag = flag.String("metrics", "", "serve metrics/pprof/ticktrace on this address (e.g. 127.0.0.1:9100)")
	traceFlag   = flag.String("trace-out", "", "write the tick trace as Chrome trace JSON to this file at shutdown")
	traceCap    = flag.Int("trace-cap", telemetry.DefaultTraceCapacity, "tick traces kept in the ring buffer")
	flightOut   = flag.String("flightrec-out", "", "write flight-recorder captures as JSONL to this file at shutdown")
	hiccupK     = flag.Float64("hiccup-k", telemetry.DefaultHiccupK, "flag a tick as a hiccup when its wall time exceeds k x the rolling median")
	costFlag    = flag.Bool("cost", true, "track per-stage allocation, GC attribution, per-client egress, and AoI churn")
	deadline    = flag.Duration("deadline", 0, "tick QoS deadline for violation accounting (default: the tick interval, 1/U)")
	parFlag     = flag.Int("parallelism", 1, "worker count for the tick pipeline's parallel stages (1 = sequential; wire output is identical either way)")
	deltaFlag   = flag.Bool("delta", false, "publish wire-v5 StateDelta/StateKeyframe streams (incremental AoI index) instead of full per-tick StateUpdates")
	keyTicksF   = flag.Int("keyframe-ticks", 0, "with -delta: periodic keyframe cadence in ticks (0 = server default)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roiaserver:", err)
		os.Exit(1)
	}
}

func run() error {
	net := transport.NewTCP()
	node, err := net.AttachListener(*idFlag, *listenFlag, 1<<16)
	if err != nil {
		return err
	}
	defer node.Close()

	assignment := zone.NewAssignment()
	assignment.AddReplica(zone.ID(*zoneFlag), *idFlag)
	if *peersFlag != "" {
		for _, spec := range strings.Split(*peersFlag, ",") {
			id, addr, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok {
				return fmt.Errorf("bad -peers entry %q (want id=host:port)", spec)
			}
			net.Register(id, addr)
			assignment.AddReplica(zone.ID(*zoneFlag), id)
		}
	}

	tracer := telemetry.NewTracer(*traceCap)
	profiler := telemetry.NewTaskProfiler()
	flightRec := telemetry.NewFlightRecorder(telemetry.FlightRecConfig{K: *hiccupK})
	var cost *telemetry.CostTracker
	if *costFlag {
		cost = telemetry.NewCostTracker()
	}
	var aoiMgr aoi.Manager
	if *deltaFlag {
		// The maintained index is what keeps the delta publish stage
		// allocation-free; full-update mode keeps the default Euclid scan.
		aoiMgr = aoi.NewIncremental(server.DefaultAOIRadius)
	}
	srv, err := server.New(server.Config{
		AOI:           aoiMgr,
		Node:          node,
		Zone:          zone.ID(*zoneFlag),
		Assignment:    assignment,
		App:           game.New(game.DefaultConfig()),
		IDPrefix:      uint16(*prefixFlag),
		Seed:          *seedFlag,
		TickInterval:  *tickFlag,
		Tracer:        tracer,
		Profiler:      profiler,
		FlightRec:     flightRec,
		Cost:          cost,
		Parallelism:   *parFlag,
		DeltaUpdates:  *deltaFlag,
		KeyframeTicks: *keyTicksF,
	})
	if err != nil {
		return err
	}
	if *deadline > 0 {
		srv.Monitor().SetDeadline(float64(*deadline) / float64(time.Millisecond))
	}
	for i := 0; i < *npcFlag; i++ {
		srv.SpawnNPC(npcPos(i))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if !*quietFlag {
		go report(ctx, srv)
	}

	drift := &telemetry.Drift{}
	names := telemetry.PhaseNames()
	taskDrift := telemetry.NewTaskDrift(names[:]...)
	go trackDrift(ctx, srv.Monitor(), drift, taskDrift, *tickFlag)

	if *metricsFlag != "" {
		if err := serveMetrics(ctx, srv.Monitor(), drift, taskDrift, profiler, tracer, flightRec, cost); err != nil {
			return err
		}
	}
	fmt.Printf("roiaserver %s: zone %d on %s, tick %v, %d peers\n",
		*idFlag, *zoneFlag, *listenFlag, *tickFlag, assignment.ReplicaCount(zone.ID(*zoneFlag))-1)
	runErr := srv.Run(ctx)
	if runErr != nil && ctx.Err() == nil {
		return runErr
	}
	if err := srv.Stop(); err != nil {
		return err
	}
	if *traceFlag != "" {
		if err := dumpTrace(tracer, *traceFlag); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Printf("wrote %d tick traces to %s\n", tracer.Len(), *traceFlag)
	}
	if *flightOut != "" {
		if err := dumpFlightRec(flightRec, *flightOut); err != nil {
			return fmt.Errorf("flightrec-out: %w", err)
		}
		fmt.Printf("wrote %d flight-recorder captures to %s (%d hiccups observed)\n",
			len(flightRec.Captures()), *flightOut, flightRec.Hiccups())
	}
	return nil
}

// serveMetrics starts the observability HTTP server: Prometheus metrics,
// the tick trace ring, and pprof. It shuts down gracefully when ctx ends.
func serveMetrics(ctx context.Context, mon *monitor.Monitor, drift *telemetry.Drift, taskDrift *telemetry.TaskDrift, profiler *telemetry.TaskProfiler, tracer *telemetry.Tracer, flightRec *telemetry.FlightRecorder, cost *telemetry.CostTracker) error {
	labels := fmt.Sprintf("server=%q,zone=\"%d\"", *idFlag, *zoneFlag)
	writers := []telemetry.MetricsWriter{
		mon.WriteMetrics,
		drift.WriteMetrics,
		taskDrift.WriteMetrics,
		profiler.WriteMetrics,
		flightRec.WriteMetrics,
		telemetry.WriteRuntimeMetrics,
	}
	if cost != nil {
		writers = append(writers, cost.WriteMetrics)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.MetricsHandler(labels, writers...))
	mux.Handle("/healthz", telemetry.ReadyHandler(func() bool { return mon.Ticks() > 0 }))
	mux.Handle("/debug/ticktrace", telemetry.TraceHandler(tracer))
	mux.Handle("/debug/flightrec", telemetry.FlightRecHandler(flightRec))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	httpSrv := &http.Server{
		Addr:              *metricsFlag,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	// done joins the serve goroutine: shutdown waits for the listener to
	// actually stop before the shutdown path completes.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "roiaserver: metrics:", err)
		}
	}()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			_ = httpSrv.Close()
		}
		<-done
	}()
	fmt.Printf("metrics on http://%s/metrics, traces on /debug/ticktrace, flight recorder on /debug/flightrec, pprof on /debug/pprof/\n", *metricsFlag)
	return nil
}

// trackDrift feeds the model-drift gauges once per second: the scalability
// model's predicted tick time for the current l/n/m/a against the measured
// mean tick (aggregate drift), plus the per-task comparison of each fitted
// parameter curve against the measured phase cost (task drift, attributing
// a diverging calibration to the specific term that is wrong). U is the
// tick interval — the budget the model is solved for.
func trackDrift(ctx context.Context, mon *monitor.Monitor, drift *telemetry.Drift, taskDrift *telemetry.TaskDrift, tick time.Duration) {
	set := params.RTFDemo()
	mdl, err := model.New(set, float64(tick.Microseconds())/1000, params.CDefault)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roiaserver: drift model:", err)
		return
	}
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			b := mon.LastBreakdown()
			if b.Replicas == 0 || mon.Ticks() == 0 {
				continue
			}
			predicted := mdl.TickTimeUneven(b.Replicas, b.Users, b.NPCs, b.ActiveUsers)
			drift.Observe(predicted, mon.MeanTick())
			mon.ObserveTaskDrift(set, taskDrift)
		}
	}
}

// dumpFlightRec writes the frozen flight-recorder captures as JSONL.
func dumpFlightRec(rec *telemetry.FlightRecorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteFlightJSONL(f, rec.Captures()); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// dumpTrace writes the trace ring as Chrome trace-event JSON.
func dumpTrace(tracer *telemetry.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(io.Writer(f), tracer.Last(0)); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// npcPos spreads initial NPCs deterministically over the world.
func npcPos(i int) entity.Vec2 {
	return entity.Vec2{X: float64((i*137)%1000) + 0.5, Y: float64((i*251)%1000) + 0.5}
}

func report(ctx context.Context, srv *server.Server) {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			mon := srv.Monitor()
			fmt.Printf("[%s] users=%d/%d tick(mean)=%.3fms t_ua=%.4f t_aoi=%.4f t_su=%.4f ticks=%d\n",
				srv.ID(), srv.UserCount(), srv.ZoneUserCount(), mon.MeanTick(),
				mon.TaskSummary(monitor.UA).Mean,
				mon.TaskSummary(monitor.AOI).Mean,
				mon.TaskSummary(monitor.SU).Mean,
				mon.Ticks())
		}
	}
}
