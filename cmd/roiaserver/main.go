// Command roiaserver runs one RTF application server over TCP, processing
// the RTFDemo-analogue shooter for one zone. Multiple roiaserver processes
// replicating the same zone exchange shadow updates and forwarded inputs;
// cmd/roiabot generates load against them.
//
// Example — two replicas of zone 1 on one machine:
//
//	roiaserver -id s1 -listen 127.0.0.1:7001 -peers s2=127.0.0.1:7002
//	roiaserver -id s2 -listen 127.0.0.1:7002 -peers s1=127.0.0.1:7001
//	roiabot    -server s1=127.0.0.1:7001 -bots 50
//
// The server prints a monitoring line once per second: connected users,
// zone users, mean tick duration, and the per-task model parameters
// measured by the RTF hooks.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"roia/internal/game"
	"roia/internal/rtf/entity"
	"roia/internal/rtf/monitor"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

var (
	idFlag      = flag.String("id", "s1", "server node ID (unique per session)")
	listenFlag  = flag.String("listen", "127.0.0.1:7001", "TCP listen address")
	zoneFlag    = flag.Uint("zone", 1, "zone ID this server processes")
	peersFlag   = flag.String("peers", "", "comma-separated peer replicas: id=host:port,...")
	tickFlag    = flag.Duration("tick", 40*time.Millisecond, "tick interval (40ms = 25Hz)")
	npcFlag     = flag.Int("npcs", 0, "NPCs to spawn on this server")
	prefixFlag  = flag.Uint("idprefix", 1, "entity-ID prefix (unique per server)")
	seedFlag    = flag.Int64("seed", 1, "random seed for the application logic")
	quietFlag   = flag.Bool("quiet", false, "suppress the per-second monitoring line")
	metricsFlag = flag.String("metrics", "", "serve Prometheus metrics on this address (e.g. 127.0.0.1:9100)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roiaserver:", err)
		os.Exit(1)
	}
}

func run() error {
	net := transport.NewTCP()
	node, err := net.AttachListener(*idFlag, *listenFlag, 1<<16)
	if err != nil {
		return err
	}
	defer node.Close()

	assignment := zone.NewAssignment()
	assignment.AddReplica(zone.ID(*zoneFlag), *idFlag)
	if *peersFlag != "" {
		for _, spec := range strings.Split(*peersFlag, ",") {
			id, addr, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok {
				return fmt.Errorf("bad -peers entry %q (want id=host:port)", spec)
			}
			net.Register(id, addr)
			assignment.AddReplica(zone.ID(*zoneFlag), id)
		}
	}

	srv, err := server.New(server.Config{
		Node:         node,
		Zone:         zone.ID(*zoneFlag),
		Assignment:   assignment,
		App:          game.New(game.DefaultConfig()),
		IDPrefix:     uint16(*prefixFlag),
		Seed:         *seedFlag,
		TickInterval: *tickFlag,
	})
	if err != nil {
		return err
	}
	for i := 0; i < *npcFlag; i++ {
		srv.SpawnNPC(npcPos(i))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if !*quietFlag {
		go report(ctx, srv)
	}
	if *metricsFlag != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", monitor.MetricsHandler(srv.Monitor(),
			fmt.Sprintf("server=%q,zone=\"%d\"", *idFlag, *zoneFlag)))
		httpSrv := &http.Server{Addr: *metricsFlag, Handler: mux}
		go func() {
			<-ctx.Done()
			httpSrv.Close()
		}()
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "roiaserver: metrics:", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metricsFlag)
	}
	fmt.Printf("roiaserver %s: zone %d on %s, tick %v, %d peers\n",
		*idFlag, *zoneFlag, *listenFlag, *tickFlag, assignment.ReplicaCount(zone.ID(*zoneFlag))-1)
	if err := srv.Run(ctx); err != nil && ctx.Err() == nil {
		return err
	}
	return srv.Stop()
}

// npcPos spreads initial NPCs deterministically over the world.
func npcPos(i int) entity.Vec2 {
	return entity.Vec2{X: float64((i*137)%1000) + 0.5, Y: float64((i*251)%1000) + 0.5}
}

func report(ctx context.Context, srv *server.Server) {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			mon := srv.Monitor()
			b := mon.LastBreakdown()
			fmt.Printf("[%s] users=%d/%d tick(mean)=%.3fms t_ua=%.4f t_aoi=%.4f t_su=%.4f ticks=%d\n",
				srv.ID(), srv.UserCount(), srv.ZoneUserCount(), mon.MeanTick(),
				mon.TaskSummary(monitor.UA).Mean,
				mon.TaskSummary(monitor.AOI).Mean,
				mon.TaskSummary(monitor.SU).Mean,
				b.Users)
		}
	}
}
