// Command roiareplay replays a recorded session's user-count trace through
// a chosen resource-management policy on the deterministic simulator —
// the capacity-validation loop: record a production (or simulated) session
// once, then ask "what would policy X have done on the same workload?".
//
// Record a session first:
//
//	roiabench -fig 8 -record session.csv
//
// then replay it:
//
//	roiareplay -in session.csv -policy model
//	roiareplay -in session.csv -policy static-interval
//	roiareplay -in session.csv -policy none
package main

import (
	"flag"
	"fmt"
	"os"

	"roia/internal/experiments"
	"roia/internal/record"
	"roia/internal/rms"
	"roia/internal/sim"
)

var (
	inFlag     = flag.String("in", "", "recorded session CSV (from roiabench -record)")
	policyFlag = flag.String("policy", "model", "policy to replay under: model, static-interval, static-threshold, none")
	seedFlag   = flag.Int64("seed", 1, "simulator seed")
	outFlag    = flag.String("record", "", "write the replayed session's own time series to this CSV")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roiareplay:", err)
		os.Exit(1)
	}
}

func run() error {
	if *inFlag == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*inFlag)
	if err != nil {
		return err
	}
	trace, err := record.LoadTrace(f)
	_ = f.Close() // read-only file; the parse error below is the signal
	if err != nil {
		return err
	}

	p, mdl := experiments.DefaultModel()
	cluster, err := sim.NewCluster(sim.Config{Params: p, Model: mdl, Seed: *seedFlag})
	if err != nil {
		return err
	}
	var ctrl rms.Controller
	switch *policyFlag {
	case "model":
		ctrl = rms.NewManager(cluster, rms.Config{Model: mdl})
	case "static-interval":
		ctrl = &rms.StaticInterval{Cluster: cluster, IntervalSec: 60, UpperMS: 32, LowerMS: 8, MaxReplicas: 8}
	case "static-threshold":
		ctrl = &rms.StaticThreshold{Cluster: cluster, MaxUsersPerServer: 150, MaxReplicas: 8}
	case "none":
		ctrl = nil
	default:
		return fmt.Errorf("unknown -policy %q", *policyFlag)
	}

	res := sim.RunSession(cluster, ctrl, trace)
	fmt.Printf("replayed %.0f s (%d..%d users) under %q:\n",
		trace.Duration(), trace.UsersAt(0), peak(trace.Counts), *policyFlag)
	fmt.Printf("  violations:     %d\n", res.TotalViolations)
	fmt.Printf("  peak tick:      %.2f ms\n", res.PeakTickMS)
	fmt.Printf("  peak replicas:  %d\n", res.PeakReplicas)
	fmt.Printf("  migrations:     %d\n", res.TotalMigrations)
	fmt.Printf("  server-seconds: %.0f\n", res.ServerSeconds)
	fmt.Printf("  provider cost:  %.2f\n", res.Cost)

	if *outFlag != "" {
		out, err := os.Create(*outFlag)
		if err != nil {
			return err
		}
		err = record.SaveSession(out, res.Stats)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return nil
}

func peak(counts []int) int {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}
