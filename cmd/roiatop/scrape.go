package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// metric is one exposition sample: a label set and its value.
type metric struct {
	labels map[string]string
	value  float64
}

// scrape is a parsed Prometheus text exposition, family → samples in
// exposition order.
type scrape map[string][]metric

// parseScrape reads the Prometheus text format the repo's MetricsWriters
// emit: `# TYPE`/comment lines, then `family{k="v",...} value` samples.
// It tolerates unknown families — the dashboard picks what it renders.
func parseScrape(r io.Reader) (scrape, error) {
	out := make(scrape)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, m, err := parseSample(line)
		if err != nil {
			return nil, err
		}
		out[name] = append(out[name], m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample splits one exposition line into family, labels and value.
func parseSample(line string) (string, metric, error) {
	var name, rest string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", metric{}, fmt.Errorf("scrape: malformed sample %q", line)
		}
		name, rest = line[:i], strings.TrimSpace(line[j+1:])
		labels, err := parseLabels(line[i+1 : j])
		if err != nil {
			return "", metric{}, fmt.Errorf("scrape: %q: %w", line, err)
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return "", metric{}, fmt.Errorf("scrape: %q: %w", line, err)
		}
		return name, metric{labels: labels, value: v}, nil
	}
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return "", metric{}, fmt.Errorf("scrape: malformed sample %q", line)
	}
	name = fields[0]
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return "", metric{}, fmt.Errorf("scrape: %q: %w", line, err)
	}
	return name, metric{labels: map[string]string{}, value: v}, nil
}

// parseLabels parses `k="v",k2="v2"`; values may escape quotes and
// backslashes per the exposition format.
func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed labels %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				i++
				val.WriteByte(rest[i])
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		out[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(rest[i+1:]), ",")
	}
	return out, nil
}

// match reports whether m's labels include every want pair.
func (m metric) match(want map[string]string) bool {
	for k, v := range want {
		if m.labels[k] != v {
			return false
		}
	}
	return true
}

// get returns the family's samples whose labels include the want pairs.
func (s scrape) get(family string, want map[string]string) []metric {
	var out []metric
	for _, m := range s[family] {
		if m.match(want) {
			out = append(out, m)
		}
	}
	return out
}

// value returns the single matching sample's value, ok=false when the
// family or label match is absent.
func (s scrape) value(family string, want map[string]string) (float64, bool) {
	ms := s.get(family, want)
	if len(ms) == 0 {
		return 0, false
	}
	return ms[0].value, true
}

// labelValues returns the sorted distinct values of one label across a
// family — e.g. the zone list, or the replica list within a zone.
func (s scrape) labelValues(family, label string, want map[string]string) []string {
	seen := make(map[string]bool)
	for _, m := range s.get(family, want) {
		if v, ok := m.labels[label]; ok && !seen[v] {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
