package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// histSeries is one retained time series from /fleet/query.
type histSeries struct {
	Family string
	Labels map[string]string
	Points []float64 // values in time order; the sparkline only needs shape
}

// parseHistory reads the /fleet/query JSONL stream, grouping raw-sample
// lines (the ones carrying "t") into series; aggregate lines are skipped —
// the dashboard draws shape, not windows.
func parseHistory(r io.Reader) ([]histSeries, error) {
	type line struct {
		Family string            `json:"family"`
		Labels map[string]string `json:"labels"`
		T      *float64          `json:"t"`
		V      *float64          `json:"v"`
	}
	idx := make(map[string]int)
	var out []histSeries
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var l line
		if err := json.Unmarshal([]byte(text), &l); err != nil {
			return nil, fmt.Errorf("history: bad line %q: %w", text, err)
		}
		if l.T == nil || l.V == nil {
			continue
		}
		key := seriesKey(l.Family, l.Labels)
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, histSeries{Family: l.Family, Labels: l.Labels})
		}
		out[i].Points = append(out[i].Points, *l.V)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(a, b int) bool {
		return seriesKey(out[a].Family, out[a].Labels) < seriesKey(out[b].Family, out[b].Labels)
	})
	return out, nil
}

// seriesKey canonicalizes family+labels for grouping and ordering.
func seriesKey(family string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(family)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, labels[k])
	}
	return b.String()
}

// find returns the first series matching family and the want label pairs.
func findSeries(series []histSeries, family string, want map[string]string) (histSeries, bool) {
	for _, s := range series {
		if s.Family != family {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return histSeries{}, false
}

// sparkline renders values as a fixed-height unicode bar run, scaled to
// the series' own min..max (a flat series renders as a low bar).
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		b.WriteRune(ramp[i])
	}
	return b.String()
}
