// Command roiatop is a terminal dashboard over the fleet collector: it
// polls /fleet/metrics and /fleet/query and renders the live replica
// table, observed occupancy against the model ceilings n_max/l_max, tick
// tail sparklines from the retained history, SLO error-budget and
// burn-rate gauges, and the alert engine's firing state — the paper's
// capacity model and the running fleet on one screen.
//
// Live mode redraws every -interval seconds:
//
//	roiatop -addr 127.0.0.1:9200
//
// -once renders a single plain (ANSI-free, byte-stable) frame and exits;
// with -fixture it renders from recorded scrape files instead of the
// network, which is how the golden test and the CI snapshot drive it:
//
//	roiatop -once -fixture cmd/roiatop/testdata
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"
)

var (
	addrFlag     = flag.String("addr", "127.0.0.1:9200", "fleet collector address (host:port)")
	intervalFlag = flag.Float64("interval", 2, "refresh interval in seconds (live mode)")
	onceFlag     = flag.Bool("once", false, "render one plain frame and exit")
	fixtureFlag  = flag.String("fixture", "", "render from recorded files in this directory (fleet_metrics.txt, fleet_query.jsonl) instead of the network; implies -once")
	noColorFlag  = flag.Bool("no-color", false, "disable ANSI colors in live mode")
)

func main() {
	flag.Parse()
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "roiatop:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	if *fixtureFlag != "" {
		snap, err := loadFixture(*fixtureFlag)
		if err != nil {
			return err
		}
		render(w, snap, style{color: false})
		return nil
	}
	if *onceFlag {
		snap, err := fetch(*addrFlag)
		if err != nil {
			return err
		}
		render(w, snap, style{color: false})
		return nil
	}
	st := style{color: !*noColorFlag}
	interval := time.Duration(*intervalFlag * float64(time.Second))
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		snap, err := fetch(*addrFlag)
		if err != nil {
			return err
		}
		if st.color {
			fmt.Fprint(w, "\x1b[H\x1b[2J") // home + clear
		}
		render(w, snap, st)
		<-ticker.C
	}
}

// fetch scrapes the collector: the full exposition, plus the retained
// tick-tail history when the collector serves /fleet/query (absence —
// e.g. no store attached — degrades to a dashboard without sparklines).
func fetch(addr string) (snapshot, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	snap := snapshot{source: addr}

	resp, err := client.Get("http://" + addr + "/fleet/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("/fleet/metrics: status %s", resp.Status)
	}
	if snap.scrape, err = parseScrape(resp.Body); err != nil {
		return snap, err
	}

	hresp, err := client.Get("http://" + addr + "/fleet/query?family=roia_fleet_tick_wall_q_ms&since=600")
	if err != nil {
		// History is optional — a collector without a store has no
		// /fleet/query; the scrape alone still renders.
		return snap, nil
	}
	defer hresp.Body.Close()
	if hresp.StatusCode == http.StatusOK {
		if snap.history, err = parseHistory(hresp.Body); err != nil {
			return snap, err
		}
	}
	return snap, nil
}

// loadFixture reads a recorded scrape pair from dir: fleet_metrics.txt
// (required) and fleet_query.jsonl (optional).
func loadFixture(dir string) (snapshot, error) {
	snap := snapshot{source: "fixture:" + filepath.ToSlash(dir)}
	mf, err := os.Open(filepath.Join(dir, "fleet_metrics.txt"))
	if err != nil {
		return snap, err
	}
	defer mf.Close()
	if snap.scrape, err = parseScrape(mf); err != nil {
		return snap, err
	}
	qf, err := os.Open(filepath.Join(dir, "fleet_query.jsonl"))
	if err != nil {
		if os.IsNotExist(err) {
			return snap, nil
		}
		return snap, err
	}
	defer qf.Close()
	if snap.history, err = parseHistory(qf); err != nil {
		return snap, err
	}
	return snap, nil
}
