package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot")

// TestRenderGolden is the acceptance gate: the -once frame rendered from
// the recorded fixture must be byte-identical to the checked-in golden.
// Regenerate after an intentional layout change with
//
//	go test ./cmd/roiatop -update
func TestRenderGolden(t *testing.T) {
	snap, err := loadFixture("testdata")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	render(&buf, snap, style{color: false})
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendered frame differs from %s (rerun with -update after intentional changes)\n--- got ---\n%s\n--- want ---\n%s",
			golden, buf.String(), want)
	}
	// The plain frame must carry no ANSI escapes: -once output is for
	// files and CI artifacts, not terminals.
	if bytes.Contains(buf.Bytes(), []byte("\x1b[")) {
		t.Error("plain render contains ANSI escapes")
	}
}

// TestRenderDeterministic re-renders the same snapshot and demands
// identical bytes — the guard against map-iteration order leaking in.
func TestRenderDeterministic(t *testing.T) {
	snap, err := loadFixture("testdata")
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	render(&a, snap, style{color: false})
	for i := 0; i < 10; i++ {
		b.Reset()
		render(&b, snap, style{color: false})
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("render is not deterministic across invocations")
		}
	}
}

func TestParseScrape(t *testing.T) {
	in := `# TYPE roia_x gauge
roia_x{zone="1",replica="a b"} 4.5
roia_x{zone="2"} 7
roia_plain 1
`
	s, err := parseScrape(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.value("roia_x", map[string]string{"zone": "1"}); !ok || v != 4.5 {
		t.Errorf("zone 1 = %v,%v", v, ok)
	}
	if got := s.labelValues("roia_x", "zone", nil); len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Errorf("zones = %v", got)
	}
	if v, ok := s.value("roia_plain", nil); !ok || v != 1 {
		t.Errorf("unlabeled = %v,%v", v, ok)
	}
	if _, err := parseScrape(strings.NewReader("roia_bad{...} x\n")); err == nil {
		t.Error("malformed sample accepted")
	}
}

func TestParseLabelsEscapes(t *testing.T) {
	got, err := parseLabels(`id="a\"b",zone="1"`)
	if err != nil {
		t.Fatal(err)
	}
	if got["id"] != `a"b` || got["zone"] != "1" {
		t.Errorf("labels = %v", got)
	}
	if _, err := parseLabels(`id=`); err == nil {
		t.Error("malformed labels accepted")
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 1, 2, 3}, 48); got != "▁▃▅█" {
		t.Errorf("ramp = %q", got)
	}
	// Flat series: all-low bars, no division by zero.
	if got := sparkline([]float64{5, 5, 5}, 48); got != "▁▁▁" {
		t.Errorf("flat = %q", got)
	}
	// Width cap keeps the newest points.
	if got := sparkline([]float64{9, 9, 0, 8}, 2); got != "▁█" {
		t.Errorf("capped = %q", got)
	}
	if got := sparkline(nil, 48); got != "" {
		t.Errorf("empty = %q", got)
	}
}

func TestWindowSeconds(t *testing.T) {
	for in, want := range map[string]float64{"5m": 300, "1h": 3600, "90s": 90, "6h": 21600, "": 0} {
		if got := windowSeconds(in); got != want {
			t.Errorf("windowSeconds(%q) = %g, want %g", in, got, want)
		}
	}
}
