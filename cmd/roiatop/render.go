package main

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ANSI styling, elided entirely in plain mode so -once snapshots are
// byte-stable.
type style struct{ color bool }

func (s style) paint(code, text string) string {
	if !s.color {
		return text
	}
	return "\x1b[" + code + "m" + text + "\x1b[0m"
}

func (s style) bold(t string) string  { return s.paint("1", t) }
func (s style) red(t string) string   { return s.paint("31", t) }
func (s style) green(t string) string { return s.paint("32", t) }
func (s style) amber(t string) string { return s.paint("33", t) }
func (s style) dim(t string) string   { return s.paint("2", t) }

// snapshot is one dashboard frame's input: the /fleet/metrics scrape plus
// the /fleet/query tail history.
type snapshot struct {
	source  string
	scrape  scrape
	history []histSeries
}

const sparkWidth = 48

// render writes one dashboard frame. Every section iterates in sorted
// order, so the same snapshot always renders the same bytes.
func render(w io.Writer, snap snapshot, st style) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", st.bold("roiatop"), snap.source)

	renderZones(&b, snap, st)
	renderReplicas(&b, snap, st)
	renderSparklines(&b, snap, st)
	renderSLO(&b, snap, st)
	renderAlerts(&b, snap, st)
	io.WriteString(w, b.String())
}

// renderZones prints one line per zone: observed n, l, m against the
// model ceilings n_max(l,m) and l_max(m) when the scrape carries them.
func renderZones(b *strings.Builder, snap snapshot, st style) {
	zones := snap.scrape.labelValues("roia_fleet_zone_users", "zone", nil)
	if len(zones) == 0 {
		return
	}
	fmt.Fprintf(b, "%s\n", st.bold("zones"))
	for _, z := range zones {
		zl := map[string]string{"zone": z}
		users, _ := snap.scrape.value("roia_fleet_zone_users", zl)
		reps, _ := snap.scrape.value("roia_fleet_replicas", zl)
		npcs, _ := snap.scrape.value("roia_fleet_npcs", zl)
		line := fmt.Sprintf("  zone %-4s users %s   replicas %s   npcs %.0f",
			z,
			vsCeiling(users, snap.scrape, "roia_fleet_nmax", zl, st),
			vsCeiling(reps, snap.scrape, "roia_fleet_lmax", zl, st),
			npcs)
		if ok, okHave := snap.scrape.value("roia_fleet_migrations", map[string]string{"zone": z, "state": "complete"}); okHave {
			lost, _ := snap.scrape.value("roia_fleet_migrations", map[string]string{"zone": z, "state": "incomplete"})
			mig := fmt.Sprintf("   migrations %.0f ok / %.0f lost", ok, lost)
			if lost > 0 {
				mig = st.red(mig)
			}
			line += mig
		}
		fmt.Fprintf(b, "%s\n", line)
	}
}

// vsCeiling renders "observed / ceiling" with load-aware coloring; a -1 or
// missing ceiling renders as observed alone.
func vsCeiling(observed float64, s scrape, family string, zl map[string]string, st style) string {
	ceil, ok := s.value(family, zl)
	if !ok || ceil < 0 {
		return fmt.Sprintf("%.0f", observed)
	}
	text := fmt.Sprintf("%.0f / %.0f", observed, ceil)
	switch {
	case observed > ceil:
		return st.red(text)
	case ceil > 0 && observed >= 0.8*ceil:
		return st.amber(text)
	default:
		return text
	}
}

// renderReplicas prints the per-replica table, sorted by zone then ID.
func renderReplicas(b *strings.Builder, snap snapshot, st style) {
	type row struct {
		zone, id string
	}
	var rows []row
	for _, m := range snap.scrape["roia_fleet_ticks_total"] {
		rows = append(rows, row{m.labels["zone"], m.labels["replica"]})
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].zone != rows[j].zone {
			return rows[i].zone < rows[j].zone
		}
		return rows[i].id < rows[j].id
	})
	fmt.Fprintf(b, "%s\n", st.bold("replicas"))
	fmt.Fprintf(b, "  %-12s %5s %9s %9s %9s %6s %8s\n", "replica", "users", "ticks", "mean ms", "p95 ms", "viol", "hiccups")
	for _, r := range rows {
		rl := map[string]string{"zone": r.zone, "replica": r.id}
		users, _ := snap.scrape.value("roia_fleet_users", rl)
		ticks, _ := snap.scrape.value("roia_fleet_ticks_total", rl)
		mean, _ := snap.scrape.value("roia_fleet_tick_mean_ms", rl)
		p95, _ := snap.scrape.value("roia_fleet_tick_p95_ms", rl)
		viol, _ := snap.scrape.value("roia_fleet_deadline_violations_total", rl)
		hic, _ := snap.scrape.value("roia_fleet_tick_hiccups_total", rl)
		line := fmt.Sprintf("  %-12s %5.0f %9.0f %9.3f %9.3f %6.0f %8.0f", r.id, users, ticks, mean, p95, viol, hic)
		if d, _ := snap.scrape.value("roia_fleet_draining", rl); d > 0 {
			line += "  " + st.amber("(draining)")
		}
		if viol > 0 {
			line = st.red(line)
		}
		fmt.Fprintf(b, "%s\n", line)
	}
}

// renderSparklines draws the retained tick-tail history per zone.
func renderSparklines(b *strings.Builder, snap snapshot, st style) {
	zones := make(map[string]bool)
	for _, s := range snap.history {
		if s.Family == "roia_fleet_tick_wall_q_ms" {
			zones[s.Labels["zone"]] = true
		}
	}
	if len(zones) == 0 {
		return
	}
	sorted := make([]string, 0, len(zones))
	for z := range zones {
		sorted = append(sorted, z)
	}
	sort.Strings(sorted)
	fmt.Fprintf(b, "%s\n", st.bold("tick tail (ms)"))
	for _, z := range sorted {
		for _, q := range []string{"p50", "p99"} {
			s, ok := findSeries(snap.history, "roia_fleet_tick_wall_q_ms", map[string]string{"zone": z, "q": q})
			if !ok || len(s.Points) == 0 {
				continue
			}
			lo, hi := s.Points[0], s.Points[0]
			for _, v := range s.Points {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			fmt.Fprintf(b, "  zone %-4s %-4s %s  %.2f..%.2f\n", z, q, sparkline(s.Points, sparkWidth), lo, hi)
		}
	}
}

// renderSLO prints each objective's error-budget state and the burn rate
// over every exported window, sorted short to long.
func renderSLO(b *strings.Builder, snap snapshot, st style) {
	slos := snap.scrape.labelValues("roia_slo_objective", "slo", nil)
	if len(slos) == 0 {
		return
	}
	fmt.Fprintf(b, "%s\n", st.bold("slo"))
	for _, name := range slos {
		sl := map[string]string{"slo": name}
		obj, _ := snap.scrape.value("roia_slo_objective", sl)
		budget, haveBudget := snap.scrape.value("roia_slo_budget_remaining", sl)
		line := fmt.Sprintf("  %-14s obj %.2f%%", name, 100*obj)
		if haveBudget {
			bt := fmt.Sprintf("  budget %6.1f%%", 100*budget)
			switch {
			case budget <= 0:
				bt = st.red(bt)
			case budget < 0.5:
				bt = st.amber(bt)
			default:
				bt = st.green(bt)
			}
			line += bt
		}
		wins := snap.scrape.get("roia_slo_burn_rate", sl)
		sort.Slice(wins, func(i, j int) bool {
			return windowSeconds(wins[i].labels["window"]) < windowSeconds(wins[j].labels["window"])
		})
		for _, wm := range wins {
			bt := fmt.Sprintf("  %s %.1fx", wm.labels["window"], wm.value)
			if wm.value > 1 {
				bt = st.amber(bt)
			}
			if wm.value > 6 {
				bt = st.red(bt)
			}
			line += bt
		}
		fmt.Fprintf(b, "%s\n", line)
	}
}

// windowSeconds parses the burn-rate window label ("5m", "1h", "90s").
func windowSeconds(s string) float64 {
	if s == "" {
		return 0
	}
	unit := s[len(s)-1]
	n, err := strconv.ParseFloat(s[:len(s)-1], 64)
	if err != nil {
		return 0
	}
	switch unit {
	case 'h':
		return n * 3600
	case 'm':
		return n * 60
	default:
		return n
	}
}

// renderAlerts lists the alert engine's live instances, firing first.
func renderAlerts(b *strings.Builder, snap snapshot, st style) {
	states := snap.scrape["roia_alert_state"]
	fmt.Fprintf(b, "%s\n", st.bold("alerts"))
	if len(states) == 0 {
		fmt.Fprintf(b, "  %s\n", st.dim("none"))
		return
	}
	sort.Slice(states, func(i, j int) bool {
		if states[i].value != states[j].value {
			return states[i].value > states[j].value // firing (2) first
		}
		if states[i].labels["rule"] != states[j].labels["rule"] {
			return states[i].labels["rule"] < states[j].labels["rule"]
		}
		return states[i].labels["key"] < states[j].labels["key"]
	})
	for _, a := range states {
		state := "pending"
		paint := st.amber
		if a.value >= 2 {
			state, paint = "firing", st.red
		}
		fmt.Fprintf(b, "  %s\n", paint(fmt.Sprintf("%-8s %-24s %s", state, a.labels["rule"], a.labels["key"])))
	}
}
