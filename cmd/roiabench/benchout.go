package main

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"roia/internal/experiments"
	"roia/internal/telemetry"
)

// benchResult and benchSnapshot mirror the BENCH_<n>.json schema written by
// tools/benchjson (which is a package main and cannot be imported): the
// variability harness emits the same document shape so `benchjson -compare`
// can diff a committed variability baseline exactly like a `go test -bench`
// snapshot — including gating on the "p99-ms" tail metric.
type benchResult struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op"`
	AllocsOp   int64              `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type benchSnapshot struct {
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Date       string                 `json:"date"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// writeVariabilitySnapshot writes the harness result as a BENCH-schema JSON
// document: one benchmark entry per scenario, mean tick as ns_per_op, tail
// quantiles and run-to-run CoV in the metrics map.
func writeVariabilitySnapshot(path string, res *experiments.VariabilityResult) error {
	benches := make(map[string]benchResult, len(res.Rows))
	for _, r := range res.Rows {
		metrics := map[string]float64{
			"p50-ms":  r.P50MS,
			"p99-ms":  r.P99MS,
			"p999-ms": r.P999MS,
			"max-ms":  r.MaxMS,
			"cov":     r.CoV,
			"hiccups": float64(r.Hiccups),
		}
		if r.NMaxOK {
			metrics["n-max"] = float64(r.NMax)
		}
		benches["BenchmarkVariability/"+r.Scenario.Name] = benchResult{
			Iterations: int64(r.Samples),
			NsPerOp:    r.MeanMS * 1e6,
			Metrics:    metrics,
		}
	}
	snap := benchSnapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		//roialint:ignore tickclock snapshot date stamp for humans, not simulation time
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: benches,
	}
	doc, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(doc, '\n'), 0o644)
}

// writeCostSnapshot writes the cost-harness result as a BENCH-schema JSON
// document: one benchmark entry per scenario, mean tick as ns_per_op, heap
// allocations per tick as allocs/bytes per op, and the GC / egress / churn
// figures in the metrics map (gated by `benchjson -compare` alongside
// ns_per_op and allocs_per_op).
func writeCostSnapshot(path string, res *experiments.CostResult) error {
	benches := make(map[string]benchResult, len(res.Rows))
	for _, r := range res.Rows {
		metrics := map[string]float64{
			"gc-pause-p99-ms": r.GCPauseP99MS,
			"gc-cycles":       float64(r.GCCycles),
			"bytes/user/tick": r.BytesPerUserTick,
			"payload-p99-b":   r.PayloadP99Bytes,
			"churn-enter-p99": r.ChurnEnterP99,
			"churn-leave-p99": r.ChurnLeaveP99,
		}
		for stage, v := range r.StageBytesPerTick {
			metrics["alloc-b/tick-"+stage] = v
		}
		benches["BenchmarkCost/"+r.Scenario.Name] = benchResult{
			Iterations: int64(r.Samples),
			NsPerOp:    r.MeanTickMS * 1e6,
			BytesPerOp: r.AllocBytesPerTick,
			AllocsOp:   int64(r.AllocObjectsPerTick),
			Metrics:    metrics,
		}
	}
	snap := benchSnapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		//roialint:ignore tickclock snapshot date stamp for humans, not simulation time
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: benches,
	}
	doc, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(doc, '\n'), 0o644)
}

// writeCostRows dumps the cost harness rows as JSONL (one scenario per
// line), the forensics artifact CI uploads when the cost gate fails.
func writeCostRows(path string, res *experiments.CostResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, r := range res.Rows {
		if err := enc.Encode(&r); err != nil {
			_ = f.Close()
			return err
		}
	}
	return f.Close()
}

// writeVariabilityCaptures dumps every flight-recorder capture frozen
// during the harness runs as JSONL (the same format roiaserver's
// /debug/flightrec endpoint serves) and returns the capture count.
func writeVariabilityCaptures(path string, res *experiments.VariabilityResult) (int, error) {
	var caps []*telemetry.FlightCapture
	for _, r := range res.Rows {
		caps = append(caps, r.Captures...)
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	err = telemetry.WriteFlightJSONL(f, caps)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return len(caps), err
}
