// Command roiabench regenerates every evaluation artifact of the paper:
// Figures 4–8, the in-text threshold anchors of Section V-A, the
// baseline-strategy comparison, the FPS-vs-RPG profile comparison of
// Section III-C, and an end-to-end client-latency probe (-fig latency)
// reporting input→update RTT percentiles and QoS-deadline violations.
//
// `-fig variability` runs the run-to-run variability harness: each live
// scenario is executed -runs times and reported as mean/p99/p99.9 per-tick
// wall time, between-run CoV, flight-recorder hiccup counts, and the
// model's n_max for the configuration. With -bench-out the result is also
// written as a BENCH-schema JSON snapshot that `tools/benchjson -compare`
// can diff (gating on the p99-ms tail) against a committed baseline.
//
// `-fig cost` runs the hot-path cost harness on the same scenarios: heap
// allocations per tick by pipeline stage, in-tick GC pause tails, framed
// egress bytes per user per tick, and AoI churn quantiles. With -bench-out
// it writes a BENCH-schema snapshot whose allocs_per_op and bytes/user/tick
// figures `tools/benchjson -compare` gates alongside ns_per_op; -cost-out
// dumps the raw per-scenario rows as JSONL for forensics.
//
// Usage:
//
//	roiabench                  # everything, ASCII charts to stdout
//	roiabench -fig 5           # one figure
//	roiabench -fig 8 -csv out  # also write out/fig8.csv
//	roiabench -seed 3          # change the deterministic seed
//	roiabench -fig variability -runs 5 -bench-out BENCH_3.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"roia/internal/experiments"
	"roia/internal/record"
	"roia/internal/stats"
)

var (
	figFlag   = flag.String("fig", "all", "artifact to regenerate: 4,5,6,7,8,anchors,baselines,traffic,heavy,pacing,flash,npcs,csweep,profiles,latency,speedup,variability,cost,recalib,all")
	csvDir    = flag.String("csv", "", "directory to write CSV datasets into (created if missing)")
	seedFlag  = flag.Int64("seed", 1, "seed for the deterministic runs")
	recFlag   = flag.String("record", "", "write the Fig. 8 session time series to this CSV (replayable via cmd/roiareplay)")
	width     = flag.Int("width", 72, "ASCII chart width")
	height    = flag.Int("height", 16, "ASCII chart height")
	runsFlag  = flag.Int("runs", 5, "repetitions per scenario for -fig variability")
	benchOut  = flag.String("bench-out", "", "variability/cost: also write the result as a BENCH-schema JSON snapshot (diffable via tools/benchjson -compare)")
	flightOut = flag.String("flightrec-out", "", "variability: write flight-recorder captures (one JSON object per line) to this path")
	costOut   = flag.String("cost-out", "", "cost: write the per-scenario cost rows (one JSON object per line) to this path")
	deltaFlag = flag.Bool("delta", false, "cost: measure the proto v5 delta publish path (delta+keyframe stream, incremental AoI) instead of full updates")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roiabench:", err)
		os.Exit(1)
	}
}

func run() error {
	want := func(name string) bool { return *figFlag == "all" || *figFlag == name }
	any := false

	if want("4") {
		any = true
		res, err := experiments.Fig4(*seedFlag)
		if err != nil {
			return err
		}
		emit(res.Table)
		fmt.Printf("fit quality: worst relative error vs ground truth = %.2f%%\n\n", res.MaxRelErr*100)
	}
	if want("5") {
		any = true
		res := experiments.Fig5()
		emit(res.Table)
		fmt.Printf("l_max = %d (paper: 8); n_max(1) = %d (paper: 235); trigger(1) = %d (paper: 188)\n",
			res.LMax, res.MaxUsers[0], res.Triggers[0])
		fmt.Printf("%-10s", "replicas:")
		for l := range res.MaxUsers {
			fmt.Printf("%7d", l+1)
		}
		fmt.Printf("\n%-10s", "max users:")
		for _, n := range res.MaxUsers {
			fmt.Printf("%7d", n)
		}
		fmt.Printf("\n%-10s", "trigger:")
		for _, n := range res.Triggers {
			fmt.Printf("%7d", n)
		}
		fmt.Print("\n\n")
	}
	if want("6") {
		any = true
		res, err := experiments.Fig6(*seedFlag)
		if err != nil {
			return err
		}
		emit(res.Table)
		fmt.Printf("t_mig_ini = %s\nt_mig_rcv = %s\n\n", res.IniCurve, res.RcvCurve)
	}
	if want("7") {
		any = true
		res := experiments.Fig7()
		emit(res.Table)
		fmt.Printf("examples: x_ini@35ms=%d (paper worked example: 3)  x_rcv@15ms=%d\n\n",
			res.IniAt[35], res.RcvAt[15])
	}
	if want("8") {
		any = true
		res, err := experiments.Fig8(*seedFlag)
		if err != nil {
			return err
		}
		emit(res.Table)
		s := res.Session
		fmt.Printf("session: violations=%d (paper: none)  peak tick=%.2f ms  peak replicas=%d  migrations=%d  cost=%.2f\n\n",
			s.TotalViolations, s.PeakTickMS, s.PeakReplicas, s.TotalMigrations, s.Cost)
		if *recFlag != "" {
			f, err := os.Create(*recFlag)
			if err != nil {
				return err
			}
			err = record.SaveSession(f, s.Stats)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Printf("session recorded to %s\n\n", *recFlag)
		}
	}
	if want("anchors") {
		any = true
		fmt.Println(experiments.Anchors())
		fmt.Println()
	}
	if want("baselines") {
		any = true
		rows, err := experiments.BaselineComparison(*seedFlag)
		if err != nil {
			return err
		}
		fmt.Println("Baseline comparison on the Fig. 8 workload:")
		fmt.Print(experiments.FormatBaselines(rows))
		fmt.Println()
	}
	if want("traffic") {
		any = true
		res, err := experiments.Traffic(*seedFlag)
		if err != nil {
			return err
		}
		emit(res.Table)
		fmt.Println(experiments.FormatTraffic(res))
		fmt.Println()
	}
	if want("heavy") {
		any = true
		res, err := experiments.HeavyLoad(*seedFlag)
		if err != nil {
			return err
		}
		emit(res.Table)
		fmt.Printf("heavy load: substitutions=%d saturation-alerts=%d final classes=%v\n",
			res.Substitutions, res.SaturationAlerts, res.FinalClasses)
		fmt.Printf("            total violations=%d (transient during upgrades), peak tick=%.1f ms, cost=%.2f\n\n",
			res.Session.TotalViolations, res.Session.PeakTickMS, res.Session.Cost)
	}
	if want("flash") {
		any = true
		res, err := experiments.FlashCrowd(*seedFlag)
		if err != nil {
			return err
		}
		emit(res.Table)
		fmt.Println("Flash crowd (150 → 400 users in one second):")
		fmt.Printf("%-18s %10s %12s %11s %12s %14s\n", "arm", "violations", "peak tick", "peak queue", "queue clear", "admitted peak")
		for _, r := range res.Rows {
			clear := "-"
			if r.QueueClearedAt > 0 {
				clear = fmt.Sprintf("%.0fs", r.QueueClearedAt)
			}
			fmt.Printf("%-18s %10d %10.2fms %11d %12s %14d\n",
				r.Name, r.Violations, r.PeakTickMS, r.PeakQueue, clear, r.AdmittedPeak)
		}
		fmt.Println()
	}
	if want("pacing") {
		any = true
		rows, err := experiments.PacingAblation(*seedFlag)
		if err != nil {
			return err
		}
		fmt.Println("Migration-pacing ablation (the paper's delta over [15]) on the Fig. 8 workload:")
		fmt.Printf("%-26s %10s %12s %10s %12s\n", "arm", "violations", "peak tick", "migrations", "max mig/s")
		for _, r := range rows {
			fmt.Printf("%-26s %10d %10.2fms %10d %12d\n",
				r.Name, r.Violations, r.PeakTickMS, r.Migrations, r.MaxMigrationsPerSecond)
		}
		fmt.Println()
	}
	if want("csweep") {
		any = true
		fmt.Println("Improvement-factor sweep (Eq. 3's economic parameter c, §V-A):")
		fmt.Printf("%8s %7s %16s\n", "c", "l_max", "n_max(l_max)")
		for _, r := range experiments.CSweep() {
			fmt.Printf("%8.2f %7d %16d\n", r.C, r.LMax, r.NMaxLMax)
		}
		fmt.Println()
	}
	if want("npcs") {
		any = true
		fmt.Println("NPC sweep (Eq. 1's m/l·t_npc term):")
		fmt.Printf("%8s %10s %7s\n", "NPCs", "n_max(1)", "l_max")
		for _, r := range experiments.NPCSweep() {
			fmt.Printf("%8d %10d %7d\n", r.NPCs, r.NMax1, r.LMax)
		}
		fmt.Println()
	}
	if want("profiles") {
		any = true
		fmt.Println("Application profiles (Section III-C):")
		fmt.Printf("%-16s %10s %12s %6s %10s\n", "profile", "U [ms]", "n_max(1)", "l_max", "x_ini(200)")
		for _, r := range experiments.ProfileComparison() {
			capacity := fmt.Sprintf("%d", r.NMax1)
			if r.Unbounded {
				capacity = ">" + capacity
			}
			fmt.Printf("%-16s %10.0f %12s %6d %10d\n", r.Name, r.U, capacity, r.LMax, r.XIni200)
		}
		fmt.Println()
	}
	if want("speedup") {
		any = true
		res, err := experiments.Speedup(*seedFlag)
		if err != nil {
			return err
		}
		emit(res.Table)
		fmt.Printf("Intra-replica parallelism (USL σ=%.3f κ=%.4f; n_ref=%d users):\n",
			res.Truth.Sigma, res.Truth.Kappa, res.NRef)
		fmt.Printf("%8s %9s %12s %10s\n", "workers", "S(w)", "tick [ms]", "n_max(1)")
		for _, r := range res.Rows {
			fmt.Printf("%8d %9.2f %12.2f %10d\n", r.Workers, r.Speedup, r.TickMS, r.NMax)
		}
		fmt.Printf("calibration round-trip: fitted σ=%.3f κ=%.4f (RMSE %.4f)\n\n",
			res.Fitted.Sigma, res.Fitted.Kappa, res.FitRMSE)
	}
	if want("latency") {
		any = true
		res, err := experiments.LatencyProbe(*seedFlag)
		if err != nil {
			return err
		}
		c := res.Client
		fmt.Printf("End-to-end latency probe (%d bots, %d unpaced ticks, %.0f ticks/s throughput):\n",
			res.Users, res.Ticks, res.TicksPerSec)
		fmt.Printf("client input→update RTT (%d samples): p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
			c.Count, c.P50, c.P95, c.P99, c.MaxMS)
		fmt.Printf("deadline %.0fms: %d violations (%.2f%%)\n\n",
			res.DeadlineMS, c.Violations, c.ViolationRate()*100)
	}
	if want("variability") {
		any = true
		res, err := experiments.Variability(*seedFlag, *runsFlag)
		if err != nil {
			return err
		}
		fmt.Printf("Run-to-run variability (%d runs per scenario, %d measured ticks each):\n",
			res.Runs, res.Rows[0].Ticks)
		fmt.Print(experiments.FormatVariability(res))
		fmt.Println()
		if *benchOut != "" {
			if err := writeVariabilitySnapshot(*benchOut, res); err != nil {
				return err
			}
			fmt.Printf("variability snapshot written to %s\n\n", *benchOut)
		}
		if *flightOut != "" {
			n, err := writeVariabilityCaptures(*flightOut, res)
			if err != nil {
				return err
			}
			fmt.Printf("%d flight-recorder capture(s) written to %s\n\n", n, *flightOut)
		}
	}
	if want("cost") {
		any = true
		opts := experiments.CostOpts{}
		if *deltaFlag {
			opts = experiments.CostOpts{DeltaUpdates: true, IncrementalAOI: true}
		}
		res, err := experiments.CostWithOpts(*seedFlag, *runsFlag, opts)
		if err != nil {
			return err
		}
		if *deltaFlag {
			fmt.Println("(delta publish path: proto v5 delta+keyframe stream, incremental AoI)")
		}
		fmt.Printf("Hot-path cost (%d runs per scenario, %d measured ticks each):\n",
			res.Runs, res.Rows[0].Ticks)
		fmt.Print(experiments.FormatCost(res))
		fmt.Println()
		if *benchOut != "" {
			if err := writeCostSnapshot(*benchOut, res); err != nil {
				return err
			}
			fmt.Printf("cost snapshot written to %s\n\n", *benchOut)
		}
		if *costOut != "" {
			if err := writeCostRows(*costOut, res); err != nil {
				return err
			}
			fmt.Printf("cost rows written to %s\n\n", *costOut)
		}
	}
	if want("recalib") {
		any = true
		res, err := experiments.RecalibratePublish(*seedFlag)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRecalibrate(res))
		fmt.Println()
	}
	if !any {
		return fmt.Errorf("unknown -fig value %q", *figFlag)
	}
	return nil
}

// emit renders a table as an ASCII chart and optionally writes its CSV.
func emit(t *stats.Table) {
	fmt.Print(t.RenderASCII(*width, *height))
	fmt.Println()
	if *csvDir == "" {
		return
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "roiabench: csv:", err)
		return
	}
	name := filepath.Join(*csvDir, slug(t.Title)+".csv")
	f, err := os.Create(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roiabench: csv:", err)
		return
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, "roiabench: csv:", err)
	}
}

// slug derives a filename from a figure title ("Fig. 5: ..." → "fig5").
func slug(title string) string {
	out := make([]rune, 0, len(title))
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ':':
			return string(out)
		}
	}
	return string(out)
}
