// Command roiacalibrate determines the scalability-model parameters for
// the shooter application by measurement, reproducing the procedure of
// Section V-A: it runs a live in-process RTF cluster (two replicas of one
// zone, as in the paper), ramps bot load up to -maxbots, collects the
// per-task CPU times from the RTF monitoring hooks at each load level, and
// fits the approximation functions with least squares / Levenberg–
// Marquardt. The calibrated parameter set is written as JSON, ready to be
// loaded into the scalability model.
//
// Absolute coefficients depend on the machine this runs on — exactly as
// the paper's depend on its Core Duo testbed. The curve shapes (quadratic
// t_ua/t_aoi, linear rest) are machine-independent.
package main

import (
	"flag"
	"fmt"
	"os"

	"roia/internal/bots"
	"roia/internal/calibrate"
	"roia/internal/fit"
	"roia/internal/game"
	"roia/internal/model"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/monitor"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
)

var (
	maxBots  = flag.Int("maxbots", 300, "peak bot count (paper: up to 300)")
	levels   = flag.Int("levels", 15, "number of load levels to sample")
	ticksPer = flag.Int("ticks", 50, "ticks to run (and sample) per load level")
	outFlag  = flag.String("o", "", "write the calibrated parameter set JSON to this file (default stdout)")
	uFlag    = flag.Float64("u", 40, "tick-duration threshold U in ms for the threshold report")
	seedFlag = flag.Int64("seed", 1, "random seed")
	validate = flag.Bool("validate", false, "after fitting, measure held-out load levels and report predicted vs measured ticks")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roiacalibrate:", err)
		os.Exit(1)
	}
}

func run() error {
	net := transport.NewLoopback()
	defer net.Close()
	fl, err := fleet.New(fleet.Config{
		Network:    net,
		Zone:       1,
		Assignment: zone.NewAssignment(),
		NewApp:     func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:       *seedFlag,
	})
	if err != nil {
		return err
	}
	// Two replicas, bots split across both — "we distribute bots equally
	// on both servers, in order to simulate a high amount of inter-server
	// communication" (Section V-A).
	for i := 0; i < 2; i++ {
		if _, err := fl.AddReplica(); err != nil {
			return err
		}
	}
	for _, id := range fl.IDs() {
		srv, _ := fl.Server(id)
		srv.Monitor().SetCollecting(true)
	}

	driver := bots.NewFleetDriver(fl, net, *seedFlag)
	for level := 1; level <= *levels; level++ {
		target := *maxBots * level / *levels
		if err := driver.SetBots(target); err != nil {
			return err
		}
		for tick := 0; tick < *ticksPer; tick++ {
			driver.Step()
		}
		fmt.Fprintf(os.Stderr, "level %2d/%d: %3d bots, mean tick %.3f ms\n",
			level, *levels, target, meanTick(fl))
	}

	var samples []monitor.Sample
	for _, id := range fl.IDs() {
		srv, _ := fl.Server(id)
		samples = append(samples, srv.Monitor().Samples()...)
	}
	res, err := calibrate.FromSamples("calibrated-shooter", samples, nil)
	if err != nil {
		return err
	}
	report(res)
	if *validate {
		if err := validateModel(res, fl, driver); err != nil {
			return err
		}
	}

	data, err := res.Set.Encode()
	if err != nil {
		return err
	}
	if *outFlag == "" {
		fmt.Println(string(data))
		return nil
	}
	return os.WriteFile(*outFlag, data, 0o644)
}

// validateModel measures held-out load levels (between the training
// levels) and compares the live mean tick against the fitted model's
// Eq. (4) prediction — the accuracy check a provider runs before trusting
// the thresholds.
func validateModel(res *calibrate.Result, fl *fleet.Fleet, driver *bots.FleetDriver) error {
	mdl, err := model.New(res.Set, *uFlag, 0.15)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "\nvalidation (held-out load levels):")
	fmt.Fprintf(os.Stderr, "  %6s %14s %14s %8s\n", "bots", "predicted[ms]", "measured[ms]", "error")
	for _, frac := range []float64{0.3, 0.55, 0.85} {
		n := int(float64(*maxBots) * frac)
		if n < 2 {
			continue
		}
		if err := driver.SetBots(n); err != nil {
			return err
		}
		for _, id := range fl.IDs() {
			srv, _ := fl.Server(id)
			srv.Monitor().Reset()
		}
		for tick := 0; tick < *ticksPer; tick++ {
			driver.Step()
		}
		measured := meanTick(fl)
		// Two replicas with an even split: a = n/2.
		predicted := mdl.TickTimeUneven(2, n, 0, n/2)
		errPct := 0.0
		if predicted > 0 {
			errPct = (measured - predicted) / predicted * 100
		}
		fmt.Fprintf(os.Stderr, "  %6d %14.4f %14.4f %7.1f%%\n", n, predicted, measured, errPct)
	}
	return nil
}

func meanTick(fl *fleet.Fleet) float64 {
	sum, n := 0.0, 0
	for _, id := range fl.IDs() {
		srv, _ := fl.Server(id)
		sum += srv.Monitor().MeanTick()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func report(res *calibrate.Result) {
	fmt.Fprintln(os.Stderr, "\nfitted approximation functions:")
	show := func(t monitor.Task, c fmt.Stringer, fr fit.Result, fitted bool) {
		if !fitted {
			fmt.Fprintf(os.Stderr, "  %-10s (no samples)\n", t)
			return
		}
		fmt.Fprintf(os.Stderr, "  %-10s = %-40s  rmse=%.5f\n", t, c, fr.RMSE)
	}
	set := res.Set
	curves := map[monitor.Task]fmt.Stringer{
		monitor.UADeser: set.UADeser, monitor.UA: set.UA, monitor.FADeser: set.FADeser,
		monitor.FA: set.FA, monitor.NPC: set.NPC, monitor.AOI: set.AOI, monitor.SU: set.SU,
		monitor.MigIni: set.MigIni, monitor.MigRcv: set.MigRcv,
	}
	for _, task := range monitor.Tasks() {
		fr, ok := res.Fits[task]
		show(task, curves[task], fr, ok)
	}

	mdl, err := model.New(set, *uFlag, 0.15)
	if err != nil {
		fmt.Fprintln(os.Stderr, "model:", err)
		return
	}
	nmax, bounded := mdl.MaxUsers(1, 0)
	lmax, _ := mdl.MaxReplicas(0)
	fmt.Fprintf(os.Stderr, "\nthresholds on THIS machine at U=%.0fms, c=0.15:\n", *uFlag)
	if bounded {
		fmt.Fprintf(os.Stderr, "  n_max(1) = %d users, replication trigger = %d, l_max = %d\n",
			nmax, model.ReplicationTrigger(nmax, 0.8), lmax)
	} else {
		fmt.Fprintf(os.Stderr, "  n_max(1) > %d users (machine faster than the search cap is wide)\n", nmax)
	}
}
