// Command roiarms runs the complete RTF-RMS stack live: an in-process RTF
// fleet processing the shooter, a bot population following a workload
// trace, and the model-driven resource manager adding replicas, pacing
// migrations per the scalability model, and removing replicas again — the
// paper's Fig. 8 experiment on real servers instead of the simulator.
//
// The capacity threshold is configurable because the live fleet runs on
// the current machine, not the paper's testbed: pick -u so scaling
// triggers inside your bot budget (see cmd/roiacalibrate for measuring
// the machine's real profile).
//
// With -fleet-metrics the session serves the cluster-level scrape while it
// runs: per-replica tick and QoS-deadline counters, per-zone cost
// attribution (allocation by stage, GC pauses, egress bytes, AoI churn),
// the merged client input→update RTT distribution (deadline set by
// -rtt-deadline), and the alert engine's state when -alerts is active. At the end of the session a
// client-RTT percentile summary is printed alongside the fleet state.
//
// Example:
//
//	roiarms -peak 150 -duration 90 -u 10 -fleet-metrics 127.0.0.1:9200
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"roia/internal/bots"
	"roia/internal/game"
	"roia/internal/model"
	"roia/internal/params"
	"roia/internal/rms"
	"roia/internal/rtf/fleet"
	"roia/internal/rtf/server"
	"roia/internal/rtf/transport"
	"roia/internal/rtf/zone"
	"roia/internal/telemetry"
	"roia/internal/telemetry/tsdb"
	"roia/internal/workload"
)

var (
	peakFlag     = flag.Int("peak", 150, "peak bot population")
	durationFlag = flag.Int("duration", 120, "session length in seconds")
	uFlag        = flag.Float64("u", 10, "tick-duration threshold U in ms for the manager")
	tpsFlag      = flag.Int("tps", 25, "ticks per second")
	maxRepFlag   = flag.Int("maxreplicas", 4, "replica cap")
	seedFlag     = flag.Int64("seed", 42, "random seed")
	decFlag      = flag.String("decisions", "", "write the manager's decision log as JSONL to this file")
	alertsFlag   = flag.String("alerts", "", "evaluate model-threshold alert rules each second and write transitions as JSONL to this file")
	eventsFlag   = flag.String("events", "", "write the fleet lifecycle event log (spawn/drain/stop/handoff) as JSONL to this file")
	fleetMetFlag = flag.String("fleet-metrics", "", "serve the fleet collector (per-replica QoS counters, client RTT, alerts) on this address (e.g. 127.0.0.1:9200)")
	rttDeadFlag  = flag.Float64("rtt-deadline", 0, "client input→update RTT deadline in ms for QoS accounting (default: two tick intervals)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "roiarms:", err)
		os.Exit(1)
	}
}

func run() error {
	net := transport.NewLoopback()
	defer net.Close()
	var events *telemetry.FleetEventLog
	if *eventsFlag != "" {
		f, err := os.Create(*eventsFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		events = telemetry.NewFleetEventLog(f)
	}
	tickInterval := time.Second / time.Duration(*tpsFlag)
	fl, err := fleet.New(fleet.Config{
		Network:       net,
		Zone:          1,
		Assignment:    zone.NewAssignment(),
		NewApp:        func() server.Application { return game.New(game.DefaultConfig()) },
		Seed:          *seedFlag,
		Events:        eventSinkOrNil(events),
		TickInterval:  tickInterval,
		ProfilePhases: *fleetMetFlag != "",
		// Flight recorders are bounded rings, so they stay on: the hiccup
		// alert rule and the collector's tail counters need them, and a
		// stalled replica leaves a capture to inspect after the session.
		FlightRecorders: true,
		// Cost trackers hold fixed-vocabulary maps plus per-client counters
		// evicted on disconnect, so they stay on too: the qos_gc_pause and
		// egress_per_user_ceiling rules and the collector's cost families
		// read them.
		CostTrackers: true,
	})
	if err != nil {
		return err
	}
	if _, err := fl.AddReplica(); err != nil {
		return err
	}
	mdl, err := model.New(params.RTFDemo(), *uFlag, params.CDefault)
	if err != nil {
		return err
	}
	var audit *telemetry.AuditLog
	if *decFlag != "" {
		f, err := os.Create(*decFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		audit = telemetry.NewAuditLog(f)
	}
	mgr := rms.NewManager(fl, rms.Config{Model: mdl, CooldownSec: 5, MaxReplicas: *maxRepFlag, Audit: sinkOrNil(audit)})
	driver := bots.NewFleetDriver(fl, net, *seedFlag)
	// Client-perceived QoS: every bot measures its input→update RTT; the
	// deadline defaults to two tick intervals (input applied next tick,
	// update delivered the tick after).
	rttDeadline := *rttDeadFlag
	if rttDeadline <= 0 {
		rttDeadline = 2 * float64(tickInterval) / float64(time.Millisecond)
	}
	driver.SetLatencyDeadline(rttDeadline)

	// -fleet-metrics: a bounded time-series store retains the per-second
	// scrape history (12 min at 1 Hz by default), and the SLO engine turns
	// the tick-deadline and client-RTT counters in it into error-budget
	// burn rates. Both are built before the alert engine so the burn-rate
	// rules can join the model-threshold rules.
	var (
		store *tsdb.Store
		slo   *tsdb.SLOEngine
	)
	if *fleetMetFlag != "" {
		store = tsdb.NewStore(tsdb.Config{})
		slo = tsdb.NewSLOEngine(store,
			// QoS contract A: every tick finishes within the deadline 1/U.
			tsdb.SLO{
				Name:      "tick_deadline",
				Objective: 0.99,
				Total:     tsdb.Selector{Family: "roia_fleet_ticks_total"},
				Bad:       tsdb.Selector{Family: "roia_fleet_deadline_violations_total"},
			},
			// QoS contract B: every client input→update round trip lands
			// within the RTT deadline.
			tsdb.SLO{
				Name:      "client_rtt",
				Objective: 0.99,
				Total:     tsdb.Selector{Family: "roia_client_rtt_count"},
				Bad:       tsdb.Selector{Family: "roia_client_rtt_deadline_violations_total"},
			},
		)
	}

	// -alerts: evaluate the model-threshold rules once per control second,
	// in lockstep with the manager, and log every pending/firing/resolved
	// transition as JSONL. With -fleet-metrics also active, the SLO burn
	// rules flow through the same engine and log.
	var (
		alertLog *telemetry.AlertLog
		engine   *telemetry.AlertEngine
		drift    *telemetry.Drift
	)
	if *alertsFlag != "" {
		f, err := os.Create(*alertsFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		alertLog = telemetry.NewAlertLog(f)
		drift = &telemetry.Drift{}
		rules := fl.AlertRules(fleet.AlertConfig{
			Model:         mdl,
			MaxReplicas:   *maxRepFlag,
			Drift:         drift,
			ClientLatency: func() telemetry.LatencySnapshot { return driver.ClientLatency().Snapshot() },
		})
		if slo != nil {
			rules = append(rules, slo.Rules(2)...)
		}
		engine = telemetry.NewAlertEngine(alertLog, rules...)
	}

	// -fleet-metrics: the cluster-level scrape — per-replica tick/deadline
	// counters, the merged client RTT distribution, model capacity
	// ceilings, SLO budget state, the retained history at /fleet/query,
	// and (with -alerts) the alert engine's state.
	var col *fleet.Collector
	if *fleetMetFlag != "" {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		col = fleet.NewCollector(fl)
		col.SetStore(store)
		col.SetModel(mdl)
		col.SetClientLatency(func() telemetry.LatencySnapshot { return driver.ClientLatency().Snapshot() })
		col.AddMetrics(func(w io.Writer, labels string) error {
			return driver.ClientLatency().WriteMetrics(w, "roia_client_rtt", labels)
		})
		col.AddMetrics(slo.WriteMetrics)
		col.AddMetrics(store.WriteMetrics)
		if engine != nil {
			col.SetAlerts(engine)
		}
		addr, err := col.Serve(ctx, *fleetMetFlag)
		if err != nil {
			return err
		}
		fmt.Printf("fleet metrics on http://%s/fleet/metrics, history on /fleet/query, migration traces on /fleet/migrations\n", addr)
	}

	half := *durationFlag / 2
	trace := workload.Piecewise{Phases: []workload.Phase{
		{Until: float64(half), Trace: workload.Ramp{From: 0, To: *peakFlag, Len: float64(half)}},
		{Until: float64(*durationFlag), Trace: workload.Ramp{From: *peakFlag, To: 0, Len: float64(*durationFlag - half)}},
	}}

	fmt.Printf("%4s %5s %8s %-24s %s\n", "time", "bots", "servers", "users-per-server", "actions")
	migrations := 0
	for sec := 0; sec < *durationFlag; sec++ {
		if err := driver.SetBots(trace.UsersAt(float64(sec))); err != nil {
			return err
		}
		for tick := 0; tick < *tpsFlag; tick++ {
			driver.Step()
		}
		// One history sample per control second, before the manager and the
		// alert rules look at the world, so the burn rates see this second.
		if col != nil {
			col.Record()
		}
		actions := mgr.Step(float64(sec))
		if engine != nil {
			observeDrift(fl, mdl, drift)
			engine.Eval(float64(sec))
		}
		var notable []string
		for _, a := range actions {
			if a.Kind == rms.ActMigrate {
				if a.Err == nil {
					migrations += a.Users
				}
				continue
			}
			notable = append(notable, a.String())
		}
		if sec%5 == 0 || len(notable) > 0 {
			fmt.Printf("%3ds %5d %8d %-24s %v\n",
				sec, len(driver.Bots()), len(fl.IDs()), usersPerServer(fl), notable)
		}
	}
	fmt.Printf("\nsession done: %d total migrations, final fleet:\n", migrations)
	for _, s := range fl.Servers() {
		fmt.Printf("  %-10s users=%-4d meanTick=%.3f ms\n", s.ID, s.Users, s.TickMS)
	}
	if snap := driver.ClientLatency().Snapshot(); snap.Count > 0 {
		fmt.Printf("client RTT (input→update, %d samples): p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms, %.1f%% over the %.0fms deadline\n",
			snap.Count, snap.P50, snap.P95, snap.P99, snap.MaxMS, snap.ViolationRate()*100, snap.DeadlineMS)
	}
	if audit != nil {
		if err := audit.Err(); err != nil {
			return fmt.Errorf("decision log: %w", err)
		}
		fmt.Printf("decision log: %s (%d records)\n", *decFlag, audit.Records())
	}
	if alertLog != nil {
		if err := alertLog.Err(); err != nil {
			return fmt.Errorf("alert log: %w", err)
		}
		fmt.Printf("alert log: %s (%d transitions, %d still active)\n",
			*alertsFlag, alertLog.Events(), len(engine.Active()))
	}
	if events != nil {
		if err := events.Err(); err != nil {
			return fmt.Errorf("event log: %w", err)
		}
		fmt.Printf("event log: %s (%d events)\n", *eventsFlag, events.Events())
	}
	return nil
}

// observeDrift feeds every replica's prediction/measurement pair into the
// drift tracker, the live Fig. 4/6 validation the model_drift rule watches.
func observeDrift(fl *fleet.Fleet, mdl *model.Model, drift *telemetry.Drift) {
	for _, id := range fl.IDs() {
		srv, ok := fl.Server(id)
		if !ok {
			continue
		}
		mon := srv.Monitor()
		b := mon.LastBreakdown()
		if b.Replicas == 0 {
			continue
		}
		drift.Observe(mdl.TickTimeUneven(b.Replicas, b.Users, b.NPCs, b.ActiveUsers), mon.MeanTick())
	}
}

// eventSinkOrNil avoids handing the fleet a non-nil interface wrapping a
// nil *FleetEventLog when -events is unset.
func eventSinkOrNil(log *telemetry.FleetEventLog) telemetry.FleetEventSink {
	if log == nil {
		return nil
	}
	return log
}

// sinkOrNil avoids handing the manager a non-nil interface wrapping a nil
// *AuditLog when -decisions is unset.
func sinkOrNil(log *telemetry.AuditLog) telemetry.DecisionSink {
	if log == nil {
		return nil
	}
	return log
}

func usersPerServer(fl *fleet.Fleet) string {
	out := ""
	for _, s := range fl.Servers() {
		if out != "" {
			out += "/"
		}
		out += fmt.Sprintf("%d", s.Users)
	}
	return out
}
