package main

import (
	"path/filepath"
	"testing"
)

// TestSelfApply runs the complete analyzer suite — including the three
// interprocedural ones — over the real repository and asserts the tree is
// clean: no finding escapes the inline suppressions and the committed
// hotpathalloc baseline. This is the same gate CI applies via
// `go run ./tools/roialint ./...`, kept as a test so `go test` alone
// catches a regression (or a stale baseline) without the CI wiring.
func TestSelfApply(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := filepath.Join("..", "..")
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	r := NewReporter(loader.Fset, loader.Root)
	for _, pkg := range pkgs {
		r.ScanSuppressions(pkg)
	}
	analyzers := defaultAnalyzers(filepath.Join(root, filepath.FromSlash(defaultHotpathBaseline)))
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if pa, ok := a.(PackageAnalyzer); ok {
				pa.Check(pkg, r)
			}
		}
	}
	g := BuildGraph(loader, pkgs, nil)
	for _, a := range analyzers {
		if ga, ok := a.(GraphAnalyzer); ok {
			ga.CheckGraph(g, r)
		}
	}
	for _, a := range analyzers {
		if fin, ok := a.(Finisher); ok {
			fin.Finish(r)
		}
	}

	for _, d := range r.Diagnostics() {
		t.Errorf("tree not clean: %v", d)
	}
}
