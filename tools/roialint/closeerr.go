package main

import (
	"go/ast"
	"go/types"
)

// CloseErr flags statement-position Close/Flush/Sync calls whose error
// result is silently discarded — the pattern that loses the final write
// error of JSONL trace and audit files. Deferred closes are exempt (the
// teardown idiom), as are methods declared in package net: a connection
// teardown error carries no signal. Acknowledge an intentionally ignored
// error with `_ = x.Close()`.
type CloseErr struct{}

func (CloseErr) Name() string { return "closeerr" }

var closeErrMethods = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func (CloseErr) Check(pkg *Package, r *Reporter) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !closeErrMethods[sel.Sel.Name] {
				return true
			}
			obj := calleeObj(pkg.Info, call)
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "net" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 {
				return true
			}
			last := sig.Results().At(sig.Results().Len() - 1).Type()
			if !isErrorType(last) {
				return true
			}
			r.Report(stmt, "closeerr",
				"%s() returns an error that is discarded; propagate it or acknowledge with `_ = ...` — a lost close error silently truncates JSONL output", sel.Sel.Name)
			return true
		})
	}
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}
