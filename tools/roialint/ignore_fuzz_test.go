package main

import (
	"strings"
	"testing"
)

// FuzzIgnoreDirective fuzzes the //roialint:ignore parser with the one
// property that keeps suppressions honest: a comment is either not a
// directive at all, a malformed directive that MUST carry an error message
// (so ScanSuppressions reports it instead of honoring it), or a
// well-formed directive with a non-empty check and reason. There is no
// fourth state in which garbage silently suppresses findings.
func FuzzIgnoreDirective(f *testing.F) {
	f.Add("roialint:ignore tickclock benchmarked against a fixed clock")
	f.Add(" roialint:ignore hotpathalloc startup-only path")
	f.Add("roialint:ignore")
	f.Add("roialint:ignore\t")
	f.Add("roialint:ignorefoo bar")
	f.Add("roialint:ignore lockhold")
	f.Add("just a comment mentioning roialint")
	f.Add("")
	f.Add("roialint:ignore  check \t reason with   spaces")
	f.Fuzz(func(t *testing.T, text string) {
		check, reason, errMsg, ok := parseIgnoreDirective(text)
		if !ok {
			// Not a directive: nothing may leak out.
			if check != "" || reason != "" || errMsg != "" {
				t.Fatalf("ok=false but fields set: check=%q reason=%q err=%q for %q", check, reason, errMsg, text)
			}
			if strings.HasPrefix(strings.TrimSpace(text), ignorePrefix) {
				t.Fatalf("directive-shaped comment not recognized: %q", text)
			}
			return
		}
		if errMsg != "" {
			// Malformed: must never yield a usable suppression.
			if reason != "" {
				t.Fatalf("malformed directive carries a reason (would be honored): %q → check=%q reason=%q", text, check, reason)
			}
			return
		}
		// Well-formed: check and reason must both be usable.
		if check == "" || reason == "" {
			t.Fatalf("well-formed directive with empty check/reason: %q → check=%q reason=%q", text, check, reason)
		}
		if strings.ContainsAny(check, " \t\n") {
			t.Fatalf("check name contains whitespace: %q from %q", check, text)
		}
	})
}
