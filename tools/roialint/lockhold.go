package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHold flags blocking operations — channel sends/receives, selects
// without a default, time.Sleep, and net / net/http calls — executed while
// a sync.Mutex or sync.RWMutex is held, inside the real-time-framework
// packages (internal/rtf/...). This is the FleetDriver scrape-safety bug
// class: a tick-path mutex held across network I/O turns one slow peer
// into a fleet-wide tick stall, which corrupts every T(l,n,m) measurement
// taken during the stall.
//
// The analysis is positional and per-function: an interval runs from each
// Lock/RLock to the next non-deferred Unlock/RUnlock of the same mutex
// expression (or to the end of the function when the unlock is deferred).
// On top of the direct checks, the call-graph pass flags calls to module
// functions whose *transitive* summary blocks — the held region does not
// have to contain the channel operation itself anymore, only a call that
// eventually reaches one through static calls.
type LockHold struct {
	// PathPrefix restricts the check to files whose module-relative path
	// contains it; empty means the rtf default.
	PathPrefix string
}

func (LockHold) Name() string { return "lockhold" }

func (l LockHold) prefix() string {
	if l.PathPrefix == "" {
		return "internal/rtf/"
	}
	return l.PathPrefix
}

type lockEvent struct {
	pos     token.Pos
	lock    bool // Lock/RLock vs Unlock/RUnlock
	deferDo bool
}

func (l LockHold) Check(pkg *Package, r *Reporter) {
	for _, f := range pkg.Files {
		if !matchesAny(pkg.RelFiles[f], []string{l.prefix()}) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			l.checkFunc(pkg, fn, r)
		}
		l.checkExecutorWorkers(pkg, f, r)
	}
}

// CheckGraph is the interprocedural extension: a call under a held mutex
// to a module function that transitively blocks is as dangerous as the
// blocking operation itself, with one level (or many) of indirection.
func (l LockHold) CheckGraph(g *Graph, r *Reporter) {
	for _, pkg := range g.Pkgs {
		if !g.reportable[pkg] {
			continue
		}
		for _, f := range pkg.Files {
			if !matchesAny(pkg.RelFiles[f], []string{l.prefix()}) {
				continue
			}
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				heldAt := lockIntervals(pkg, fn, r.fset)
				if heldAt == nil {
					continue
				}
				self := g.NodeOf(funcObj(pkg, fn))
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					key, lockPos, held := heldAt(call.Pos())
					if !held {
						return true
					}
					callee, _ := calleeObj(pkg.Info, call).(*types.Func)
					if callee == nil {
						return true
					}
					target := g.NodeOf(callee)
					if target == nil || target == self || !target.Blocks {
						return true
					}
					why, where := target.BlockWhy, ""
					if target.BlockSite != nil {
						p := r.fset.Position(target.BlockSite.Pos())
						where = r.Rel(p.Filename) + ":" + itoa(p.Line)
					}
					r.Report(call, "lockhold",
						"call to %s while %s is held (locked at line %d): it can block (%s at %s)",
						target.Name, key, r.fset.Position(lockPos).Line, why, where)
					return true
				})
			}
		}
	}
}

// funcObj resolves a declaration to its *types.Func.
func funcObj(pkg *Package, fn *ast.FuncDecl) *types.Func {
	obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
	return obj
}

// checkExecutorWorkers flags any mutex operation inside a closure handed to
// the tick executor: the tick goroutine holds the server mutex for the
// whole tick, so a worker locking it deadlocks — and any other lock
// reintroduces the cross-worker coupling the slot discipline exists to
// avoid.
func (LockHold) checkExecutorWorkers(pkg *Package, f *ast.File, r *Reporter) {
	for _, lit := range executorWorkerFuncs(pkg, f) {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock", "Unlock", "RUnlock":
			default:
				return true
			}
			t := pkg.Info.TypeOf(sel.X)
			if t == nil || (!isNamed(t, "sync", "Mutex") && !isNamed(t, "sync", "RWMutex")) {
				return true
			}
			r.Report(call, "lockhold",
				"%s.%s inside an executor worker: the tick goroutine holds the server mutex for the whole tick, so workers must never touch a mutex",
				exprKey(r.fset, sel.X), sel.Sel.Name)
			return true
		})
	}
}

// lockIntervals computes the held-mutex intervals of one function and
// returns a position lookup, or nil when the function takes no locks.
func lockIntervals(pkg *Package, fn *ast.FuncDecl, fset *token.FileSet) func(token.Pos) (string, token.Pos, bool) {
	info := pkg.Info

	// Pass 1: collect Lock/Unlock events per mutex expression.
	events := map[string][]lockEvent{}
	inDefer := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			inDefer[d.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var isLock bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			isLock = true
		case "Unlock", "RUnlock":
		default:
			return true
		}
		t := info.TypeOf(sel.X)
		if t == nil || (!isNamed(t, "sync", "Mutex") && !isNamed(t, "sync", "RWMutex")) {
			return true
		}
		key := exprKey(fset, sel.X)
		events[key] = append(events[key], lockEvent{pos: call.Pos(), lock: isLock, deferDo: inDefer[call]})
		return true
	})
	if len(events) == 0 {
		return nil
	}

	// Build held intervals: Lock → next plain Unlock, else function end.
	type interval struct {
		key        string
		start, end token.Pos
	}
	var held []interval
	for key, evs := range events {
		for i, ev := range evs {
			if !ev.lock || ev.deferDo {
				continue
			}
			end := fn.Body.End()
			for _, after := range evs[i+1:] {
				if !after.lock && !after.deferDo && after.pos > ev.pos {
					end = after.pos
					break
				}
			}
			held = append(held, interval{key: key, start: ev.pos, end: end})
		}
	}
	if len(held) == 0 {
		return nil
	}
	return func(pos token.Pos) (string, token.Pos, bool) {
		for _, iv := range held {
			if pos > iv.start && pos < iv.end {
				return iv.key, iv.start, true
			}
		}
		return "", token.NoPos, false
	}
}

func (l LockHold) checkFunc(pkg *Package, fn *ast.FuncDecl, r *Reporter) {
	heldAt := lockIntervals(pkg, fn, r.fset)
	if heldAt == nil {
		return
	}

	// Flag blocking operations inside held intervals. Comm clauses of a
	// select with a default are non-blocking and exempted.
	nonBlocking := map[ast.Node]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlocking[cc.Comm] = true
				}
			}
			nonBlocking[sel] = true
		}
		return true
	})
	report := func(n ast.Node, what string) {
		if key, lockPos, ok := heldAt(n.Pos()); ok {
			r.Report(n, "lockhold", "%s while %s is held (locked at line %d): a blocked peer stalls every tick waiting on this mutex",
				what, key, r.fset.Position(lockPos).Line)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !nonBlocking[n] {
				report(n, "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !commOf(n, nonBlocking) {
				report(n, "channel receive")
			}
		case *ast.SelectStmt:
			if !nonBlocking[n] {
				report(n, "select without default")
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(n, "range over channel")
				}
			}
		case *ast.CallExpr:
			if isPkgCall(pkg.Info, n, "time", "Sleep") {
				report(n, "time.Sleep")
			} else if isPkgCall(pkg.Info, n, "net") {
				report(n, "net call")
			} else if isPkgCall(pkg.Info, n, "net/http",
				"Get", "Post", "Head", "PostForm", "Do", "Serve", "ListenAndServe", "ListenAndServeTLS", "Shutdown") {
				report(n, "net/http call")
			}
		}
		return true
	})
}

// commOf reports whether the receive expression belongs to an exempted
// (non-blocking) select comm statement.
func commOf(recv *ast.UnaryExpr, nonBlocking map[ast.Node]bool) bool {
	for stmt := range nonBlocking {
		if stmt.Pos() <= recv.Pos() && recv.End() <= stmt.End() {
			if _, ok := stmt.(*ast.SelectStmt); !ok {
				return true
			}
		}
	}
	return false
}
