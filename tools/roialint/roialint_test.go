package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestGolden runs each analyzer over its fixture package and compares the
// rendered diagnostics against the checked-in golden file. The fixtures
// double as negative tests: every shape that must NOT be flagged simply
// has no corresponding golden line.
func TestGolden(t *testing.T) {
	loader, err := NewLoader("testdata")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	cases := []struct {
		dir            string
		analyzers      []Analyzer
		wantSuppressed int
	}{
		{dir: "httptimeout", analyzers: []Analyzer{HTTPTimeout{}}},
		// PathPrefix/Allowed are repo paths in production; the fixtures
		// substitute their own so both branches are exercised.
		{dir: "lockhold", analyzers: []Analyzer{LockHold{PathPrefix: "lockhold/"}}},
		{dir: "metricname", analyzers: []Analyzer{&MetricName{}}},
		{dir: "boundedgrowth", analyzers: []Analyzer{BoundedGrowth{}}},
		{dir: "tickclock", analyzers: []Analyzer{TickClock{Allowed: []string{"clock_ok.go", "exec.go"}}}},
		{dir: "closeerr", analyzers: []Analyzer{CloseErr{}}},
		{dir: "determinism", analyzers: []Analyzer{Determinism{}}},
		// No BaselinePath: every allocation site reports. Baseline
		// round-tripping is covered by TestHotPathBaselineRoundTrip.
		{dir: "hotpathalloc", analyzers: []Analyzer{HotPathAlloc{}}},
		{dir: "goroutinelife", analyzers: []Analyzer{GoroutineLife{}}},
		{dir: "suppress", analyzers: []Analyzer{TickClock{}}, wantSuppressed: 2},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := loader.LoadDir(filepath.Join("testdata", tc.dir), "fixture/"+tc.dir)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			r := NewReporter(loader.Fset, loader.Root)
			r.ScanSuppressions(pkg)
			var g *Graph
			for _, a := range tc.analyzers {
				if _, ok := a.(GraphAnalyzer); ok && g == nil {
					g = BuildGraph(loader, []*Package{pkg}, nil)
				}
			}
			for _, a := range tc.analyzers {
				if pa, ok := a.(PackageAnalyzer); ok {
					pa.Check(pkg, r)
				}
			}
			for _, a := range tc.analyzers {
				if ga, ok := a.(GraphAnalyzer); ok {
					ga.CheckGraph(g, r)
				}
			}
			for _, a := range tc.analyzers {
				if fin, ok := a.(Finisher); ok {
					fin.Finish(r)
				}
			}
			var lines []string
			for _, d := range r.Diagnostics() {
				lines = append(lines, d.String())
			}
			got := strings.Join(lines, "\n")
			if got != "" {
				got += "\n"
			}
			golden := filepath.Join("testdata", tc.dir, "golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run `go test ./tools/roialint -update` to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if r.Suppressed() != tc.wantSuppressed {
				t.Errorf("suppressed = %d, want %d", r.Suppressed(), tc.wantSuppressed)
			}
		})
	}
}

// TestGoldenNonEmpty guards the harness itself: every fixture directory
// except the all-clean ones must produce at least one diagnostic, so a
// broken analyzer cannot silently pass by matching an empty golden file.
// The callgraph fixture is exempt — it feeds the structural unit tests in
// callgraph_test.go, not the golden harness.
func TestGoldenNonEmpty(t *testing.T) {
	dirs, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() || d.Name() == "callgraph" {
			continue
		}
		golden := filepath.Join("testdata", d.Name(), "golden")
		data, err := os.ReadFile(golden)
		if err != nil {
			t.Errorf("%s: %v", golden, err)
			continue
		}
		if len(strings.TrimSpace(string(data))) == 0 {
			t.Errorf("%s: golden file is empty; positive fixtures must produce diagnostics", golden)
		}
	}
}
