package main

// Determinism enforces the PR 5 byte-identical-output contract tree-wide:
// the staged tick pipeline promises that client-visible wire bytes are
// identical for any worker count and GOMAXPROCS, and the telemetry layer
// promises byte-stable exposition and JSONL streams (golden tests, scrape
// diffing, and the fleet collector's dedup all rely on it).
//
// Two scopes, both interprocedural:
//
//   - the wire scope: everything reachable from an executor worker closure
//     or from any function whose signature touches a wire.Writer. Here
//     nothing nondeterministic is allowed at all: no unsorted map ranges,
//     no wall-clock reads, no math/rand global source (injected sources
//     via rand.New are fine), no GOMAXPROCS/NumCPU-dependent values, and
//     no goroutine spawns (scheduling order is not part of the contract);
//   - the emit scope: every function that transitively writes formatted
//     output (fmt.Fprint*, JSON encoders, strings.Builder/bytes.Buffer).
//     Here only map-iteration order is policed — emitted lines must not
//     depend on it.
//
// A map range is accepted as deterministic on positive evidence only:
// either a sort.*/slices.Sort* call later in the same function (the
// collect-keys-then-sort idiom), or an order-insensitive body (deletes,
// map writes, scalar accumulation — nothing ordered escapes the loop).
type Determinism struct{}

func (Determinism) Name() string { return "determinism" }

func (Determinism) CheckGraph(g *Graph, r *Reporter) {
	for _, n := range g.Nodes {
		if !g.Reportable(n) {
			continue
		}
		wire := g.DetScope(n)
		emit := n.Emits
		if !wire && !emit {
			continue
		}
		for _, s := range n.Sites {
			switch s.Kind {
			case SiteMapRange:
				if s.SortedAfter || s.Benign {
					continue
				}
				where := "emitted output"
				if wire {
					where = "the wire/publish path"
				}
				r.Report(s.Node, "determinism",
					"map iteration order reaches %s in %s — collect the keys and sort them first",
					where, n.Name)
			case SiteClock:
				if wire {
					r.Report(s.Node, "determinism",
						"time.%s in %s, which is reachable from the wire/publish path — wall time must come from the injected tick clock", s.Detail, n.Name)
				}
			case SiteRandGlobal:
				if wire {
					r.Report(s.Node, "determinism",
						"%s in %s uses the global rand source on the wire/publish path — inject a seeded *rand.Rand instead", s.Detail, n.Name)
				}
			case SiteSchedDep:
				if wire {
					r.Report(s.Node, "determinism",
						"%s in %s makes wire output depend on the processor count", s.Detail, n.Name)
				}
			case SiteSpawn:
				if wire {
					r.Report(s.Node, "determinism",
						"goroutine spawned in %s on the wire/publish path — scheduling order would leak into the byte stream", n.Name)
				}
			}
		}
	}
}
