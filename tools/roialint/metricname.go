package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// MetricName enforces the exposition grammar every metric family in the
// repo follows: families are `(roia|fleet)_[a-z0-9_]+`, each family keeps
// one metric type, and the statically visible label-key set of a family is
// identical at every write site. Grafana dashboards and the alert rules
// key on these names; a family that drifts (casing, a second TYPE, a label
// set that differs between two writers) silently breaks every consumer.
//
// Sites checked:
//   - `# TYPE <family> <kind>` headers in string literals;
//   - sample lines in format literals (`roia_foo%s %d\n`, `fleet_bar{...}`);
//   - literal family names passed to Histogram/LogHistogram Write methods.
type MetricName struct {
	famKinds  map[string]kindDecl
	famLabels map[string][]labelSite
	sampled   map[string]token.Position // family → first sample without a TYPE decl
	declared  map[string]bool
}

type kindDecl struct {
	kind string
	pos  token.Position
}

type labelSite struct {
	keys string // sorted, comma-joined label keys
	pos  token.Position
}

var (
	familyRe    = regexp.MustCompile(`^(roia|fleet)_[a-z0-9_]+$`)
	typeLineRe  = regexp.MustCompile(`# TYPE[ \t]+(\S+)[ \t]+(\S+)`)
	labelKeyRe  = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)=`)
	metricKinds = map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
)

func (*MetricName) Name() string { return "metricname" }

func (m *MetricName) init() {
	if m.famKinds == nil {
		m.famKinds = map[string]kindDecl{}
		m.famLabels = map[string][]labelSite{}
		m.sampled = map[string]token.Position{}
		m.declared = map[string]bool{}
	}
}

func (m *MetricName) Check(pkg *Package, r *Reporter) {
	m.init()
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind == token.STRING {
					m.checkLiteral(pkg, n, r)
				}
			case *ast.CallExpr:
				m.checkHistWrite(pkg, n, r)
				m.checkSampleLabels(pkg, n, r)
			}
			return true
		})
	}
}

// checkLiteral scans one string literal for `# TYPE` headers and records
// family kinds; family grammar is validated here.
func (m *MetricName) checkLiteral(pkg *Package, lit *ast.BasicLit, r *Reporter) {
	text, ok := stringLit(pkg.Info, lit)
	if !ok || !strings.Contains(text, "# TYPE") {
		return
	}
	pos := r.fset.Position(lit.Pos())
	for _, match := range typeLineRe.FindAllStringSubmatch(text, -1) {
		family, kind := match[1], match[2]
		if strings.Contains(family, "%") {
			continue // dynamic family (e.g. Histogram.Write's own header)
		}
		if !familyRe.MatchString(family) {
			r.Report(lit, "metricname",
				"metric family %q does not match the exposition grammar (roia|fleet)_[a-z0-9_]+", family)
		}
		if !metricKinds[kind] && !strings.Contains(kind, "%") {
			r.Report(lit, "metricname", "unknown metric type %q for family %q", kind, family)
		}
		m.declare(family, kind, pos, r)
	}
}

func (m *MetricName) declare(family, kind string, pos token.Position, r *Reporter) {
	m.declared[family] = true
	if prev, ok := m.famKinds[family]; ok {
		if prev.kind != kind {
			r.ReportPos(pos, "metricname",
				"metric family %q declared as %s here but as %s at %s:%d", family, kind, prev.kind, r.Rel(prev.pos.Filename), prev.pos.Line)
		}
		return
	}
	m.famKinds[family] = kindDecl{kind: kind, pos: pos}
}

// checkHistWrite validates literal family names handed to the telemetry
// histogram writers (receiver type named Histogram or LogHistogram).
func (m *MetricName) checkHistWrite(pkg *Package, call *ast.CallExpr, r *Reporter) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Write" || len(call.Args) < 2 {
		return
	}
	t := namedType(pkg.Info.TypeOf(sel.X))
	if t == nil {
		return
	}
	if name := t.Obj().Name(); name != "Histogram" && name != "LogHistogram" {
		return
	}
	family, ok := stringLit(pkg.Info, call.Args[1])
	if !ok {
		return
	}
	if !familyRe.MatchString(family) {
		r.Report(call.Args[1], "metricname",
			"metric family %q does not match the exposition grammar (roia|fleet)_[a-z0-9_]+", family)
		return
	}
	m.declare(family, "histogram", r.fset.Position(call.Pos()), r)
	// Histogram samples carry the le label internally plus the caller's
	// dynamic label set; they do not participate in label consistency.
	m.sample(family, r.fset.Position(call.Pos()))
}

func (m *MetricName) sample(family string, pos token.Position) {
	if _, ok := m.sampled[family]; !ok {
		m.sampled[family] = pos
	}
}

// checkSampleLabels associates sample lines in an Fprintf-style format
// literal with the label keys statically visible in the same call.
func (m *MetricName) checkSampleLabels(pkg *Package, call *ast.CallExpr, r *Reporter) {
	if !isPkgCall(pkg.Info, call, "fmt", "Fprintf", "Sprintf", "Printf", "Fprint", "Sprint") {
		return
	}
	var format string
	var formatArg ast.Expr
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, ok := stringLit(pkg.Info, lit); ok {
				format, formatArg = s, arg
				break
			}
		}
	}
	if formatArg == nil {
		return
	}
	pos := r.fset.Position(formatArg.Pos())
	for _, line := range strings.Split(format, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fam := line
		if i := strings.IndexAny(fam, "{% \t"); i >= 0 {
			fam = fam[:i]
		}
		if !strings.HasPrefix(fam, "roia_") && !strings.HasPrefix(fam, "fleet_") {
			continue
		}
		if !familyRe.MatchString(fam) {
			r.Report(formatArg, "metricname",
				"metric family %q does not match the exposition grammar (roia|fleet)_[a-z0-9_]+", fam)
			continue
		}
		m.sample(fam, pos)

		var keys []string
		known := false
		if rest := line[len(fam):]; strings.HasPrefix(rest, "{") {
			known = true
			if end := strings.Index(rest, "}"); end > 0 {
				keys = labelKeys(rest[1:end])
			}
		} else {
			// Label keys come from literal strings in the sibling args
			// (directly, via fmt.Sprintf, or via a label-builder call).
			for _, arg := range call.Args {
				if arg == formatArg {
					continue
				}
				if s, ok := argStrings(pkg.Info, arg); ok {
					known = true
					keys = append(keys, labelKeys(s)...)
				}
			}
		}
		if !known {
			continue // dynamic label set: nothing to compare statically
		}
		sort.Strings(keys)
		keySet := strings.Join(dedup(keys), ",")
		m.famLabels[fam] = append(m.famLabels[fam], labelSite{keys: keySet, pos: pos})
	}
}

// argStrings extracts literal text from an argument expression: a string
// literal, a fmt.Sprintf with a literal format, or any call whose
// arguments contain such literals (the lbl(...) helper idiom).
func argStrings(info *types.Info, arg ast.Expr) (string, bool) {
	if s, ok := stringLit(info, arg); ok {
		return s, true
	}
	if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
		var parts []string
		found := false
		for _, a := range call.Args {
			if s, ok := argStrings(info, a); ok {
				parts = append(parts, s)
				found = true
			}
		}
		if found {
			return strings.Join(parts, ","), true
		}
	}
	return "", false
}

func labelKeys(s string) []string {
	var keys []string
	for _, match := range labelKeyRe.FindAllStringSubmatch(s, -1) {
		keys = append(keys, match[1])
	}
	return keys
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || sorted[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// Finish runs the cross-package consistency checks: label-set divergence
// and samples whose family is never TYPE-declared anywhere in the tree.
func (m *MetricName) Finish(r *Reporter) {
	m.init()
	for family, sites := range m.famLabels {
		base := sites[0]
		for _, s := range sites[1:] {
			if s.keys != base.keys {
				r.ReportPos(s.pos, "metricname",
					"metric family %q written with label keys {%s} here but {%s} at %s:%d — dashboards need one label set per family",
					family, s.keys, base.keys, r.Rel(base.pos.Filename), base.pos.Line)
				break
			}
		}
	}
	var missing []string
	for family := range m.sampled {
		if !m.declared[family] {
			missing = append(missing, family)
		}
	}
	sort.Strings(missing)
	for _, family := range missing {
		r.ReportPos(m.sampled[family], "metricname",
			"metric family %q is written but never `# TYPE`-declared anywhere in the tree", family)
	}
}
