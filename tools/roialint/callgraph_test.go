package main

import (
	"path/filepath"
	"testing"
)

// loadCallgraphFixture builds the graph over the callgraph unit fixture.
func loadCallgraphFixture(t *testing.T) *Graph {
	t.Helper()
	loader, err := NewLoader("testdata")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "callgraph"), "fixture/callgraph")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	return BuildGraph(loader, []*Package{pkg}, nil)
}

func findNode(t *testing.T, g *Graph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no node named %q in graph (have %d nodes)", name, len(g.Nodes))
	return nil
}

func edgesTo(n *FuncNode, callee *FuncNode) []Edge {
	var out []Edge
	for _, e := range n.Edges {
		if e.Callee == callee {
			out = append(out, e)
		}
	}
	return out
}

// TestGraphShape checks nodes, edge kinds, and root detection on the
// miniature tick pipeline.
func TestGraphShape(t *testing.T) {
	g := loadCallgraphFixture(t)

	tick := findNode(t, g, "(*Server).Tick")
	if !tick.TickRoot {
		t.Error("(*Server).Tick: TickRoot = false, want true")
	}

	worker := findNode(t, g, "(*Server).Tick.func1")
	if !worker.WorkerRoot {
		t.Error("worker closure: WorkerRoot = false, want true")
	}
	if es := edgesTo(tick, worker); len(es) != 1 || es[0].Kind != EdgeRef {
		t.Errorf("Tick→worker edges = %+v, want one EdgeRef", es)
	}

	helper := findNode(t, g, "helper")
	if es := edgesTo(worker, helper); len(es) != 1 || es[0].Kind != EdgeCall {
		t.Errorf("worker→helper edges = %+v, want one EdgeCall", es)
	}

	spawned := findNode(t, g, "spawned")
	if es := edgesTo(tick, spawned); len(es) != 1 || es[0].Kind != EdgeSpawn {
		t.Errorf("Tick→spawned edges = %+v, want one EdgeSpawn", es)
	}
	var spawnSite *Site
	for _, s := range tick.Sites {
		if s.Kind == SiteSpawn {
			spawnSite = s
		}
	}
	if spawnSite == nil || spawnSite.Target != spawned {
		t.Errorf("Tick spawn site target = %v, want the spawned node", spawnSite)
	}

	// Interface resolution: drive's Put call becomes a dynamic edge to the
	// single module implementation.
	drive := findNode(t, g, "drive")
	put := findNode(t, g, "(*mem).Put")
	es := edgesTo(drive, put)
	if len(es) != 1 || es[0].Kind != EdgeCall || !es[0].Dynamic {
		t.Errorf("drive→(*mem).Put edges = %+v, want one dynamic EdgeCall", es)
	}
}

// TestGraphSummaries checks the fixpoint bits: blocking through static
// calls only, emission through every edge, stop evidence on the spawnee.
func TestGraphSummaries(t *testing.T) {
	g := loadCallgraphFixture(t)

	helper := findNode(t, g, "helper")
	if !helper.Blocks {
		t.Error("helper (time.Sleep): Blocks = false, want true")
	}
	worker := findNode(t, g, "(*Server).Tick.func1")
	if !worker.Blocks {
		t.Error("worker closure: Blocks = false, want true (static call to helper)")
	}
	tick := findNode(t, g, "(*Server).Tick")
	if tick.Blocks {
		t.Error("Tick: Blocks = true, want false (EdgeRef and EdgeSpawn must not propagate blocking)")
	}

	spawned := findNode(t, g, "spawned")
	if !spawned.stops {
		t.Error("spawned (channel receive): stops = false, want true")
	}

	// (*mem).Put emits via fmt.Println in emit; drive reaches it only
	// through a dynamic edge — emission still propagates.
	emit := findNode(t, g, "emit")
	if !emit.Emits {
		t.Error("emit (fmt.Println): Emits = false, want true")
	}
	drive := findNode(t, g, "drive")
	if !drive.Emits {
		t.Error("drive: Emits = false, want true (emission propagates through dynamic edges)")
	}
}

// TestGraphReachability checks the hot-path and determinism scopes.
func TestGraphReachability(t *testing.T) {
	g := loadCallgraphFixture(t)

	tick := findNode(t, g, "(*Server).Tick")
	worker := findNode(t, g, "(*Server).Tick.func1")
	helper := findNode(t, g, "helper")
	spawned := findNode(t, g, "spawned")
	drive := findNode(t, g, "drive")
	put := findNode(t, g, "(*mem).Put")

	for _, tc := range []struct {
		n    *FuncNode
		hot  bool
		det  bool
		desc string
	}{
		{tick, true, false, "Tick: hot root, not in the det scope"},
		{worker, true, true, "worker closure: both scopes' root"},
		{helper, true, true, "helper: reached from the worker"},
		{spawned, false, false, "spawned: spawn edges do not extend reachability"},
		{drive, false, false, "drive: not reached from any root"},
		{put, false, false, "(*mem).Put: only reachable via unrooted drive"},
	} {
		if got := g.HotPath(tc.n); got != tc.hot {
			t.Errorf("%s: HotPath = %v, want %v", tc.desc, got, tc.hot)
		}
		if got := g.DetScope(tc.n); got != tc.det {
			t.Errorf("%s: DetScope = %v, want %v", tc.desc, got, tc.det)
		}
	}
}

// TestHotPathBaselineRoundTrip writes a baseline from the hotpathalloc
// fixture and re-runs the analyzer against it: every finding must be
// absorbed (suppressed but still visible to -json), and the baseline must
// hold line-number-independent keys only.
func TestHotPathBaselineRoundTrip(t *testing.T) {
	loader, err := NewLoader("testdata")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "hotpathalloc"), "fixture/hotpathalloc")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	g := BuildGraph(loader, []*Package{pkg}, nil)

	r1 := NewReporter(loader.Fset, loader.Root)
	HotPathAlloc{}.CheckGraph(g, r1)
	open := len(r1.Diagnostics())
	if open == 0 {
		t.Fatal("fixture produced no findings; the round-trip test needs debt to freeze")
	}

	baseline := filepath.Join(t.TempDir(), "baseline")
	rw := NewReporter(loader.Fset, loader.Root)
	HotPathAlloc{BaselinePath: baseline, WriteBaseline: true}.CheckGraph(g, rw)
	if n := len(rw.Diagnostics()); n != 0 {
		t.Fatalf("write-baseline pass reported %d finding(s): %v", n, rw.Diagnostics())
	}

	r2 := NewReporter(loader.Fset, loader.Root)
	HotPathAlloc{BaselinePath: baseline}.CheckGraph(g, r2)
	if n := len(r2.Diagnostics()); n != 0 {
		t.Errorf("baselined run still has %d active finding(s): %v", n, r2.Diagnostics())
	}
	if got := r2.Suppressed(); got != open {
		t.Errorf("baselined run suppressed %d, want %d", got, open)
	}
	all := r2.AllDiagnostics()
	if len(all) != open {
		t.Errorf("AllDiagnostics has %d entries, want %d (baselined findings stay visible)", len(all), open)
	}
	for _, d := range all {
		if !d.Suppressed {
			t.Errorf("finding not marked suppressed: %v", d)
		}
	}
}
