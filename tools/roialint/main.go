// Command roialint is the repo's static-analysis suite: a stdlib-only
// (go/ast, go/parser, go/types) multi-analyzer linter that machine-checks
// the runtime-loop invariants previous PRs kept re-applying by hand —
// hardened HTTP servers, no blocking I/O under rtf mutexes, the
// (roia|fleet)_ metric exposition grammar, bounded telemetry buffers,
// injectable clocks, and no discarded Close/Flush errors on writers.
//
// Usage:
//
//	go run ./tools/roialint ./...            # whole module (CI gate)
//	go run ./tools/roialint internal/rtf/... # one subtree
//	go run ./tools/roialint -list            # list analyzers
//
// Exit status: 0 clean, 1 findings, 2 load/usage error. Findings print as
// file:line:col: [check] message. Suppress a single finding with an inline
// comment on (or directly above) the offending line:
//
//	//roialint:ignore <check> <reason>
//
// The reason is mandatory and itself linted.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func defaultAnalyzers() []Analyzer {
	return []Analyzer{
		HTTPTimeout{},
		LockHold{},
		&MetricName{},
		BoundedGrowth{},
		TickClock{},
		CloseErr{},
	}
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	checks := flag.String("check", "", "comma-separated analyzer names to run (default: all)")
	root := flag.String("C", ".", "module root to analyze")
	flag.Parse()

	analyzers := defaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Println(a.Name())
		}
		return
	}
	if *checks != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*checks, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				sel = append(sel, a)
				delete(want, a.Name())
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "roialint: unknown check %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	loader, err := NewLoader(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roialint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "roialint: %v\n", err)
		os.Exit(2)
	}

	// Positional patterns filter which packages are *reported on*; every
	// package is still loaded so cross-package checks see the whole tree.
	patterns := flag.Args()
	match := func(p *Package) bool {
		if len(patterns) == 0 {
			return true
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(p.Path, loader.Module), "/")
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			pat = strings.TrimSuffix(pat, "...")
			pat = strings.TrimSuffix(pat, "/")
			if pat == "" || pat == "." || rel == pat || strings.HasPrefix(rel, pat+"/") {
				return true
			}
		}
		return false
	}

	r := NewReporter(loader.Fset, loader.Root)
	for _, pkg := range pkgs {
		if !match(pkg) {
			continue
		}
		r.ScanSuppressions(pkg)
		for _, a := range analyzers {
			a.Check(pkg, r)
		}
	}
	for _, a := range analyzers {
		if fin, ok := a.(Finisher); ok {
			fin.Finish(r)
		}
	}

	diags := r.Diagnostics()
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := r.Suppressed(); n > 0 {
		fmt.Fprintf(os.Stderr, "roialint: %d finding(s) suppressed inline\n", n)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "roialint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
