// Command roialint is the repo's static-analysis suite: a stdlib-only
// (go/ast, go/parser, go/types) multi-analyzer linter that machine-checks
// the runtime-loop invariants previous PRs kept re-applying by hand —
// hardened HTTP servers, no blocking I/O under rtf mutexes, the
// (roia|fleet)_ metric exposition grammar, bounded telemetry buffers,
// injectable clocks, and no discarded Close/Flush errors on writers.
//
// Since v2 the suite is two-phase: phase one builds a module-wide call
// graph with per-function summaries (callgraph.go), phase two runs the
// interprocedural analyzers over it — determinism (the byte-identical
// wire/output contract), hotpathalloc (allocation debt on the tick path,
// frozen in a committed baseline), goroutinelife (goroutine join/stop and
// ticker Stop evidence), plus the graph-rebased tickclock and lockhold.
//
// Usage:
//
//	go run ./tools/roialint ./...            # whole module (CI gate)
//	go run ./tools/roialint internal/rtf/... # one subtree
//	go run ./tools/roialint -list            # list analyzers
//	go run ./tools/roialint -json ./...      # one JSON finding per line
//
// Exit status: 0 clean, 1 findings, 2 load/usage error. Findings print as
// file:line:col: [check] message. Suppress a single finding with an inline
// comment on (or directly above) the offending line:
//
//	//roialint:ignore <check> <reason>
//
// The reason is mandatory and itself linted. hotpathalloc additionally
// reads a committed baseline of frozen allocation debt; regenerate it with
// -write-hotpath-baseline after deliberate changes and review the diff.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultHotpathBaseline is the committed allocation-debt file, relative
// to the module root.
const defaultHotpathBaseline = "tools/roialint/hotpathalloc.baseline"

func defaultAnalyzers(baseline string) []Analyzer {
	return []Analyzer{
		HTTPTimeout{},
		LockHold{},
		&MetricName{},
		BoundedGrowth{},
		TickClock{},
		CloseErr{},
		Determinism{},
		HotPathAlloc{BaselinePath: baseline},
		GoroutineLife{},
	}
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	checks := flag.String("check", "", "comma-separated analyzer names to run (default: all)")
	root := flag.String("C", ".", "module root to analyze")
	jsonOut := flag.Bool("json", false, "emit findings as JSON lines (including suppressed ones) instead of text")
	baselineFlag := flag.String("hotpath-baseline", defaultHotpathBaseline,
		"hotpathalloc baseline file, relative to the module root; empty disables the baseline")
	writeBaseline := flag.Bool("write-hotpath-baseline", false,
		"regenerate the hotpathalloc baseline from the current tree and exit")
	flag.Parse()

	baseline := *baselineFlag
	if baseline != "" && !filepath.IsAbs(baseline) {
		baseline = filepath.Join(*root, filepath.FromSlash(baseline))
	}

	analyzers := defaultAnalyzers(baseline)
	if *list {
		for _, a := range analyzers {
			fmt.Println(a.Name())
		}
		return
	}
	if *writeBaseline {
		if baseline == "" {
			fmt.Fprintln(os.Stderr, "roialint: -write-hotpath-baseline needs a -hotpath-baseline path")
			os.Exit(2)
		}
		analyzers = []Analyzer{HotPathAlloc{BaselinePath: baseline, WriteBaseline: true}}
	}
	if *checks != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*checks, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				sel = append(sel, a)
				delete(want, a.Name())
			}
		}
		if len(want) > 0 {
			unknown := make([]string, 0, len(want))
			for name := range want {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			for _, name := range unknown {
				fmt.Fprintf(os.Stderr, "roialint: unknown check %q\n", name)
			}
			os.Exit(2)
		}
		analyzers = sel
	}

	loader, err := NewLoader(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "roialint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "roialint: %v\n", err)
		os.Exit(2)
	}

	// Positional patterns filter which packages are *reported on*; every
	// package is still loaded so cross-package checks see the whole tree.
	patterns := flag.Args()
	match := func(p *Package) bool {
		if len(patterns) == 0 {
			return true
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(p.Path, loader.Module), "/")
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			pat = strings.TrimSuffix(pat, "...")
			pat = strings.TrimSuffix(pat, "/")
			if pat == "" || pat == "." || rel == pat || strings.HasPrefix(rel, pat+"/") {
				return true
			}
		}
		return false
	}

	r := NewReporter(loader.Fset, loader.Root)
	reportable := map[*Package]bool{}
	for _, pkg := range pkgs {
		if !match(pkg) {
			continue
		}
		reportable[pkg] = true
		r.ScanSuppressions(pkg)
	}

	needGraph := false
	for _, a := range analyzers {
		if _, ok := a.(GraphAnalyzer); ok {
			needGraph = true
		}
	}
	for _, pkg := range pkgs {
		if !reportable[pkg] {
			continue
		}
		for _, a := range analyzers {
			if pa, ok := a.(PackageAnalyzer); ok {
				pa.Check(pkg, r)
			}
		}
	}
	if needGraph {
		g := BuildGraph(loader, pkgs, reportable)
		for _, a := range analyzers {
			if ga, ok := a.(GraphAnalyzer); ok {
				ga.CheckGraph(g, r)
			}
		}
	}
	for _, a := range analyzers {
		if fin, ok := a.(Finisher); ok {
			fin.Finish(r)
		}
	}

	diags := r.Diagnostics()
	if *jsonOut {
		if err := WriteJSONL(os.Stdout, r.AllDiagnostics()); err != nil {
			fmt.Fprintf(os.Stderr, "roialint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if n := r.Suppressed(); n > 0 {
			fmt.Fprintf(os.Stderr, "roialint: %d finding(s) suppressed (inline or baselined)\n", n)
		}
	}
	if *writeBaseline && len(diags) == 0 {
		fmt.Fprintf(os.Stderr, "roialint: wrote %s\n", *baselineFlag)
		return
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "roialint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
