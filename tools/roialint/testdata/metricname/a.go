// Package metricname holds metricname fixtures: exposition grammar
// violations, TYPE conflicts, label drift, and the clean shapes.
package metricname

import (
	"fmt"
	"io"
	"strings"
)

// Histogram mimics the telemetry histogram writer signature.
type Histogram struct{}

// Write renders one histogram family under the given name.
func (Histogram) Write(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	return err
}

// Bad: family casing breaks the grammar; kind "count" is not a metric type.
func badHeaders(w io.Writer) {
	fmt.Fprintf(w, "# TYPE roia_BadCase_total counter\nroia_BadCase_total %d\n", 1)
	fmt.Fprintf(w, "# TYPE myapp_ticks counter\n")
	fmt.Fprintf(w, "# TYPE roia_thing_total count\nroia_thing_total %d\n", 2)
}

// Bad: the same family declared with two different types.
func conflict(w io.Writer) {
	fmt.Fprintf(w, "# TYPE roia_conflict_total counter\nroia_conflict_total %d\n", 1)
	fmt.Fprintf(w, "# TYPE roia_conflict_total gauge\nroia_conflict_total %d\n", 2)
}

// Bad: one family written with two different label-key sets.
func labelDrift(w io.Writer) {
	fmt.Fprintf(w, "# TYPE roia_label_ms gauge\n")
	fmt.Fprintf(w, "roia_label_ms{stat=\"p95\"} %g\n", 1.0)
	fmt.Fprintf(w, "roia_label_ms{zone=\"1\"} %g\n", 2.0)
}

// Bad: a sample family that is never TYPE-declared anywhere.
func undeclared(w io.Writer) {
	fmt.Fprintf(w, "roia_undeclared_total %d\n", 3)
}

// Bad: a malformed literal family handed to the histogram writer.
func badHistName(w io.Writer) error {
	var h Histogram
	return h.Write(w, "roia_Bad_Hist", "")
}

// Bad: a tail-quantile family whose label key drifts from "q" to
// "quantile" between samples.
func quantileDrift(w io.Writer) {
	fmt.Fprintf(w, "# TYPE roia_fleet_tick_wall_q_ms gauge\n")
	fmt.Fprintf(w, "roia_fleet_tick_wall_q_ms{q=\"p50\"} %g\n", 1.0)
	fmt.Fprintf(w, "roia_fleet_tick_wall_q_ms{quantile=\"0.99\"} %g\n", 2.0)
}

// Bad: an egress family whose label key drifts from "type" to "kind".
func egressDrift(w io.Writer) {
	fmt.Fprintf(w, "# TYPE roia_egress_bytes_total counter\n")
	fmt.Fprintf(w, "roia_egress_bytes_total{type=\"state_update\"} %d\n", 1)
	fmt.Fprintf(w, "roia_egress_bytes_total{kind=\"input\"} %d\n", 2)
}

// Good: the cost observability families — per-stage allocation counters,
// GC pause totals and quantile gauges, per-type egress counters, and AoI
// churn quantiles, each with one constant label-key set.
func costClean(w io.Writer) {
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_alloc_bytes_total counter\n")
	fmt.Fprintf(&b, "roia_alloc_bytes_total%s %d\n", fmt.Sprintf("stage=%q", "decode"), 10)
	fmt.Fprintf(&b, "roia_alloc_bytes_total%s %d\n", fmt.Sprintf("stage=%q", "publish"), 20)
	fmt.Fprintf(&b, "# TYPE roia_gc_cycles_total counter\nroia_gc_cycles_total %d\n", 3)
	fmt.Fprintf(&b, "# TYPE roia_gc_pause_ms_total counter\nroia_gc_pause_ms_total %g\n", 0.5)
	fmt.Fprintf(&b, "# TYPE roia_gc_pause_q_ms gauge\n")
	fmt.Fprintf(&b, "roia_gc_pause_q_ms{q=\"0.99\"} %g\n", 0.1)
	fmt.Fprintf(&b, "roia_gc_pause_q_ms{q=\"1\"} %g\n", 0.4)
	fmt.Fprintf(&b, "# TYPE roia_egress_client_bytes_total counter\nroia_egress_client_bytes_total %d\n", 512)
	fmt.Fprintf(&b, "# TYPE roia_egress_payload_q_bytes gauge\n")
	fmt.Fprintf(&b, "roia_egress_payload_q_bytes{q=\"0.5\"} %g\n", 96.0)
	fmt.Fprintf(&b, "# TYPE roia_aoi_churn_enter_q gauge\n")
	fmt.Fprintf(&b, "roia_aoi_churn_enter_q{q=\"0.99\"} %g\n", 2.0)
	_, _ = io.WriteString(w, b.String())
}

// Good: well-formed families, consistent kinds and labels.
func clean(w io.Writer, labels string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE roia_ok_total counter\nroia_ok_total %d\n", 1)
	fmt.Fprintf(&b, "# TYPE fleet_ok_users gauge\n")
	fmt.Fprintf(&b, "fleet_ok_users%s %d\n", fmt.Sprintf("zone=%q", "1"), 4)
	fmt.Fprintf(&b, "fleet_ok_users%s %d\n", fmt.Sprintf("zone=%q", "2"), 5)
	// Dynamic label sets are out of static reach and stay unflagged.
	fmt.Fprintf(&b, "# TYPE roia_dyn_total counter\n")
	fmt.Fprintf(&b, "roia_dyn_total%s %d\n", labels, 6)
	// Good: the tail observability families — one gauge family carrying its
	// quantile in a constant "q" label, and plain hiccup/capture counters.
	fmt.Fprintf(&b, "# TYPE roia_tick_wall_q_ms gauge\n")
	fmt.Fprintf(&b, "roia_tick_wall_q_ms{q=\"p50\"} %g\n", 0.2)
	fmt.Fprintf(&b, "roia_tick_wall_q_ms{q=\"p999\"} %g\n", 1.4)
	fmt.Fprintf(&b, "# TYPE roia_tick_hiccups_total counter\nroia_tick_hiccups_total %d\n", 7)
	fmt.Fprintf(&b, "# TYPE roia_flightrec_captures_total counter\nroia_flightrec_captures_total %d\n", 1)
	var h Histogram
	if err := h.Write(&b, "roia_ok_ms", ""); err != nil {
		return err
	}
	_, err := io.WriteString(w, b.String())
	return err
}
