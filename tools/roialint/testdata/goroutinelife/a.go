// Package goroutinelife holds goroutine- and ticker-lifecycle fixtures:
// spawns with no join evidence, unstopped tickers, and the joined, stopped
// and ownership-transferred shapes that must stay clean.
package goroutinelife

import (
	"context"
	"sync"
	"time"
)

func work() {}

// SpawnLeak has no join evidence anywhere in the spawned closure.
func SpawnLeak() {
	go func() { // bad: can outlive its owner
		work()
	}()
}

// SpawnDynamic spawns a bare function value: nothing to inspect.
func SpawnDynamic(f func()) {
	go f() // bad: dynamic function value
}

// SpawnJoined closes a done channel the caller receives on.
func SpawnJoined() {
	done := make(chan struct{})
	go func() { // fine: deferred close is a completion signal
		defer close(done)
		work()
	}()
	<-done
}

// SpawnWG signals a WaitGroup.
func SpawnWG(wg *sync.WaitGroup) {
	go func() { // fine: WaitGroup.Done
		defer wg.Done()
		work()
	}()
}

// SpawnCtx waits on a context.
func SpawnCtx(ctx context.Context) {
	go func() { // fine: ctx.Done receive
		<-ctx.Done()
	}()
}

// SpawnHelper reaches join evidence through a static call.
func SpawnHelper(ch chan int) {
	go waiter(ch) // fine: waiter receives
}

func waiter(ch chan int) { <-ch }

// TickerLeak never stops its ticker.
func TickerLeak() {
	t := time.NewTicker(time.Second) // bad: no Stop in this function
	<-t.C
}

// TimerLeak never stops its timer.
func TimerLeak() {
	t := time.NewTimer(time.Second) // bad: no Stop in this function
	<-t.C
}

// TickLeak uses the unstoppable helper.
func TickLeak() {
	<-time.Tick(time.Second) // bad: time.Tick can never be stopped
}

// TickerStopped defers the Stop.
func TickerStopped() {
	t := time.NewTicker(time.Second) // fine: deferred Stop below
	defer t.Stop()
	<-t.C
}

// pump owns its ticker as a struct field: the Stop lives in another
// method, so creation-time analysis hands ownership to the type.
type pump struct{ t *time.Ticker }

func (p *pump) start() {
	p.t = time.NewTicker(time.Second) // fine: ownership transferred
}

func (p *pump) stop() { p.t.Stop() }
