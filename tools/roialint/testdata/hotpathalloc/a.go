// Package hotpathalloc holds hot-path allocation fixtures: one site per
// tracked allocation kind inside the tick-reachable closure, plus the
// shapes that must not count (pointer boxing, local helper literals,
// functions off the tick path).
package hotpathalloc

import "fmt"

// Server makes Tick a hot-path root, matched by type and method name.
type Server struct{ n int }

// Tick is the per-tick entry point.
func (s *Server) Tick() {
	_ = fmt.Sprintf("tick %d", s.n) // bad: fmt on the tick path
	var out []int
	out = append(out, s.n) // bad: append onto a bare slice
	_ = out
	sink(func() { s.n++ }) // bad: escaping closure capturing s
	box(s.n)               // bad: boxing an int
	box(&s.n)              // fine: pointers fit the interface word
	double := func(v int) int { return v * 2 }
	s.n = double(s.n) // fine: local helper literal stays on the stack
	s.n = hotHelper(s.n)
}

// hotHelper is tick-reachable through the call above.
func hotHelper(n int) int {
	s := "n=" + digit(n) // bad: string concatenation, one call deep
	return len(s)
}

func digit(n int) string { return string(rune('0' + n%10)) }

func sink(f func()) { f() }

func box(v any) {}

// cold is not reachable from Tick: its allocations do not count.
func cold() string { return fmt.Sprintf("cold %d", 3) }
