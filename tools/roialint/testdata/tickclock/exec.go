package tickclock

import "time"

// executor mirrors the tick pipeline's worker pool: closures passed to run
// execute on worker goroutines and must read time through the injected
// clock, even though this file is on the analyzer's approved list.
type executor struct{ clock func() time.Time }

func (e *executor) run(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func approvedExecutorUse() {
	e := &executor{clock: time.Now} // value reference to inject: fine
	e.run(4, func(i int) {
		_ = time.Now() // direct call inside a worker: flagged
	})
	e.run(2, func(i int) {
		_ = e.clock() // injected clock: fine
	})
	_ = time.Now() // approved file, tick goroutine: fine
}

// workerHelper is only called from a worker closure below: its clock read
// executes on a worker goroutine even though this file is approved.
func workerHelper() time.Time {
	return time.Now() // flagged transitively, with the call chain
}

func transitiveWorkerUse() {
	e := &executor{clock: time.Now}
	e.run(2, func(i int) {
		_ = workerHelper()
	})
}
