package tickclock

import "time"

// This file is on the analyzer's approved list (the tick-loop analogue):
// direct clock calls here are the measurement surface itself.
func approvedStamp() time.Time {
	return time.Now()
}
