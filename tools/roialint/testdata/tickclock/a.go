// Package tickclock holds tickclock fixtures: direct clock calls outside
// the approved surface, and the injectable shapes that must stay clean.
package tickclock

import "time"

// Bad: direct wall-clock read in unapproved code.
func stamp() int64 {
	return time.Now().UnixMicro()
}

// Bad: direct sleep couples the caller to real time.
func pause() {
	time.Sleep(10 * time.Millisecond)
}

// Good: referencing time.Now as a value injects the clock.
type clocked struct {
	now func() time.Time
}

func newClocked() *clocked {
	return &clocked{now: time.Now}
}

func (c *clocked) stamp() int64 {
	return c.now().UnixMicro()
}
