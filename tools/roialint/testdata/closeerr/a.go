// Package closeerr holds closeerr fixtures: discarded writer close/flush
// errors, and every accepted acknowledgement idiom.
package closeerr

import (
	"bufio"
	"encoding/csv"
	"net"
	"os"
)

// Bad: the close error of a (possibly written) file is dropped.
func fileClose(f *os.File) {
	f.Close()
}

// Bad: a buffered writer's flush error is the write error.
func flush(w *bufio.Writer) {
	w.Flush()
}

// Good: explicitly acknowledged.
func acked(f *os.File) {
	_ = f.Close()
}

// Good: deferred close is the read-path teardown idiom.
func deferred(f *os.File) error {
	defer f.Close()
	return nil
}

// Good: propagated to the caller.
func propagated(f *os.File) error {
	return f.Close()
}

// Good: csv.Writer.Flush returns nothing; its error lives in Error().
func csvFlush(w *csv.Writer) {
	w.Flush()
}

// Good: net connection teardown errors carry no signal.
func netClose(c net.Conn) {
	c.Close()
}
