// Package suppress exercises the //roialint:ignore mechanism: both
// placements, the mandatory reason, and check-name matching.
package suppress

import "time"

// Good: suppressed by a trailing comment on the offending line.
func trailing() int64 {
	return time.Now().UnixMicro() //roialint:ignore tickclock fixture exercising same-line suppression
}

// Good: suppressed by a comment directly above the offending line.
func above() {
	//roialint:ignore tickclock fixture exercising line-above suppression
	time.Sleep(time.Millisecond)
}

// Bad: a reason-less suppression is itself a finding, and the violation
// it failed to cover is still reported.
func noReason() int64 {
	return time.Now().UnixMicro() //roialint:ignore tickclock
}

// Bad: a suppression naming a different check does not apply.
func wrongCheck() {
	//roialint:ignore httptimeout reason that does not match this finding
	time.Sleep(time.Millisecond)
}

// Bad: plain violation, nothing suppressing it.
func plain() int64 {
	return time.Now().UnixMicro()
}
