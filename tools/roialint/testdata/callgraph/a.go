// Package callgraph is the unit-test fixture for the interprocedural core:
// a miniature tick pipeline exercising every edge kind, the reachability
// roots, and the blocking/emission/stop fixpoints. It has no golden file —
// callgraph_test.go asserts on the graph structure directly.
package callgraph

import (
	"fmt"
	"time"
)

type executor struct{}

func (e *executor) run(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Server.Tick is the hot-path root.
type Server struct{ e *executor }

func (s *Server) Tick() {
	s.e.run(2, func(i int) {
		helper()
	})
	go spawned()
}

func helper() { time.Sleep(time.Millisecond) }

func spawned() { <-make(chan int) }

// Sink exercises interface resolution: drive's call is a dynamic edge to
// every module implementation.
type Sink interface{ Put(v int) }

type mem struct{}

func (m *mem) Put(v int) { emit(v) }

func emit(v int) { fmt.Println(v) }

func drive(s Sink) { s.Put(1) }
