// Package wire is the fixture analogue of the repo's wire package: any
// function whose signature mentions Writer is a deterministic-output
// producer, and everything it reaches joins the wire scope.
package wire

// Writer is the byte-stream builder the determinism contract covers.
type Writer struct{ B []byte }
