// Package determinism holds determinism fixtures: nondeterminism sources
// inside the wire and emit scopes, plus the sorted/benign shapes and the
// out-of-scope functions that must stay clean.
package determinism

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"fixture/determinism/wire"
)

// Publish is a wire producer: its signature mentions wire.Writer, so its
// whole call closure is in the byte-identical-output scope.
func Publish(w *wire.Writer, counts map[string]int) {
	for k := range counts { // bad: unsorted map range on the wire path
		w.B = append(w.B, k...)
	}
	w.B = append(w.B, byte(time.Now().Second())) // bad: wall clock
	w.B = append(w.B, byte(rand.Intn(256)))      // bad: global rand source
	w.B = append(w.B, byte(runtime.NumCPU()))    // bad: processor count
	go flush(w)                                  // bad: scheduling order
	for _, k := range helper(counts) {
		w.B = append(w.B, k...)
	}
}

func flush(w *wire.Writer) { w.B = w.B[:0] }

// helper takes no wire type itself: it is in scope only because Publish
// reaches it.
func helper(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts { // bad: map order escapes, one call deep
		keys = append(keys, k)
	}
	return keys
}

// PublishSorted collects then sorts: the approved idiom.
func PublishSorted(w *wire.Writer, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts { // fine: sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.B = append(w.B, k...)
	}
}

// Reset only deletes: an order-insensitive body.
func Reset(w *wire.Writer, counts map[string]int) {
	for k := range counts { // fine: benign body
		delete(counts, k)
	}
}

// Dump writes formatted output: the emit scope polices map order only.
func Dump(counts map[string]int) {
	for k, v := range counts { // bad: emitted line order depends on the map
		fmt.Printf("%s=%d\n", k, v)
	}
	_ = time.Now() // fine: clock reads are allowed off the wire path
}

// Keys is in neither scope: map order here is its caller's problem.
func Keys(counts map[string]int) []string {
	out := make([]string, 0, len(counts))
	for k := range counts { // fine: no emission, not wire-reachable
		out = append(out, k)
	}
	return out
}
