// Package boundedgrowth holds boundedgrowth fixtures: unbounded growth in
// long-lived collector types, and every accepted bounding idiom.
package boundedgrowth

// Recorder grows without any cap in its method set.
type Recorder struct {
	events []int
	byID   map[int]string
}

// Bad: append with no bounding evidence anywhere.
func (r *Recorder) Add(v int) {
	r.events = append(r.events, v)
}

// Bad: map insert with no delete, reset, or len comparison.
func (r *Recorder) Put(k int, v string) {
	r.byID[k] = v
}

// Ring is the canonical bounded buffer: a len comparison gates the append
// and the overwrite path reuses slots.
type Ring struct {
	buf  []int
	next int
	max  int
}

// Good: capped append plus ring overwrite.
func (t *Ring) Push(v int) {
	if len(t.buf) < t.max {
		t.buf = append(t.buf, v)
		return
	}
	t.buf[t.next] = v
	t.next = (t.next + 1) % t.max
}

// Sink ages entries out with delete.
type Sink struct {
	pending map[int]string
}

// Good: the map insert is paired with an age-out in the method set.
func (s *Sink) Track(k int, v string) {
	s.pending[k] = v
}

// Resolve removes a tracked entry.
func (s *Sink) Resolve(k int) {
	delete(s.pending, k)
}

// SampleCollector truncates in a sibling method.
type SampleCollector struct {
	samples []float64
}

// Good: Trim provides the visible bound.
func (c *SampleCollector) Observe(v float64) {
	c.samples = append(c.samples, v)
}

// Trim resets the sample log.
func (c *SampleCollector) Trim() {
	c.samples = c.samples[:0]
}

// SnapshotSink only copy-appends into a fresh slice.
type SnapshotSink struct {
	last []int
}

// Good: append onto a nil slice replaces, it does not grow the field.
func (s *SnapshotSink) Set(v []int) {
	s.last = append([]int(nil), v...)
}

// FlightRecorder mirrors the telemetry flight recorder's discipline: a
// fixed-capacity ring of per-tick records overwritten modulo size, and a
// capture list gated by a len comparison with a dropped counter for the
// overflow path.
type FlightRecorder struct {
	ring     []int
	next     int
	size     int
	captures [][]int
	maxCaps  int
	dropped  int
}

// Good: warm-up fill capped at size, then ring slot overwrite.
func (r *FlightRecorder) Record(v int) {
	if len(r.ring) < r.size {
		r.ring = append(r.ring, v)
		return
	}
	r.ring[r.next] = v
	r.next = (r.next + 1) % r.size
}

// Good: the capture append is capped; overflow increments dropped instead.
func (r *FlightRecorder) freeze() {
	if len(r.captures) >= r.maxCaps {
		r.dropped++
		return
	}
	r.captures = append(r.captures, append([]int(nil), r.ring...))
}

// UsageTracker mirrors the cost tracker's per-client discipline: a map
// keyed by live connections whose entries are deleted on disconnect, and a
// small fixed-vocabulary map gated by a len comparison that collapses
// overflow into a catch-all key.
type UsageTracker struct {
	perClient map[string]uint64
	byKind    map[string]uint64
}

// Good: the insert is paired with the Evict age-out in the method set.
func (t *UsageTracker) Observe(client string, n uint64) {
	t.perClient[client] += n
}

// Evict removes a disconnected client's counter.
func (t *UsageTracker) Evict(client string) {
	delete(t.perClient, client)
}

// Good: a len comparison caps the vocabulary; overflow shares one key.
func (t *UsageTracker) ObserveKind(kind string, n uint64) {
	if _, ok := t.byKind[kind]; !ok && len(t.byKind) >= 8 {
		kind = "other"
	}
	t.byKind[kind] += n
}

// LeakTracker proves the Tracker suffix is in scope for the heuristic.
type LeakTracker struct {
	seen map[string]int
}

// Bad: map insert in a *Tracker type with no bounding evidence.
func (t *LeakTracker) Mark(k string) {
	t.seen[k] += 1
}

// EventStore proves the Store suffix is in scope: a time-series-style
// store whose series map and per-series buffers grow without any cap.
type EventStore struct {
	series map[string][]float64
}

// Bad: map insert in a *Store type with no bounding evidence.
func (s *EventStore) Insert(key string, v float64) {
	s.series[key] = append(s.series[key], v)
}

// SampleSeries mirrors the tsdb ring discipline: warm-up append capped by
// a len comparison, then ring-slot overwrite with a dropped counter.
type SampleSeries struct {
	buf     []float64
	next    int
	size    int
	dropped int
}

// Good: the tsdb idiom — capped fill, then overwrite-oldest.
func (s *SampleSeries) Append(v float64) {
	if len(s.buf) < s.size {
		s.buf = append(s.buf, v)
		return
	}
	s.buf[s.next] = v
	s.next = (s.next + 1) % s.size
	s.dropped++
}

// builder does not match the long-lived-type heuristic at all.
type builder struct {
	parts []string
}

// Good: short-lived accumulators are out of scope.
func (b *builder) add(s string) {
	b.parts = append(b.parts, s)
}
