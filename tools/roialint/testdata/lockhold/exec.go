package lockhold

import "sync"

// executor mirrors the tick pipeline's worker pool: closures passed to run
// execute on worker goroutines while the tick goroutine holds the server
// mutex, so workers must never touch a mutex.
type executor struct{}

func (e *executor) run(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

type tickSrv struct {
	mu  sync.Mutex
	sum int
}

func (s *tickSrv) tick(e *executor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.run(8, func(i int) {
		s.mu.Lock() // flagged: deadlocks against the tick goroutine
		s.sum += i
		s.mu.Unlock() // flagged
	})
	e.run(8, func(i int) {
		s.sum -= i // slot-owned state, no locking: fine
	})
}
