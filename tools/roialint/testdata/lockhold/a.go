// Package lockhold holds lockhold fixtures: blocking operations under
// sync mutexes, plus the non-blocking shapes that must stay clean.
package lockhold

import (
	"net"
	"sync"
	"time"
)

type guarded struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	data map[string]int
}

// Bad: channel send between Lock and Unlock.
func (g *guarded) sendHeld() {
	g.mu.Lock()
	g.ch <- 1
	g.mu.Unlock()
}

// Bad: time.Sleep while a deferred unlock holds the mutex to return.
func (g *guarded) sleepHeld() {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond)
	g.data["k"] = 1
}

// Bad: network dial under a read lock still stalls every writer.
func (g *guarded) dialHeld() error {
	g.rw.RLock()
	defer g.rw.RUnlock()
	conn, err := net.Dial("tcp", "localhost:1")
	if err != nil {
		return err
	}
	return conn.Close()
}

// Bad: channel receive while held.
func (g *guarded) recvHeld() int {
	g.mu.Lock()
	v := <-g.ch
	g.mu.Unlock()
	return v
}

// Good: the blocking operation happens after the unlock.
func (g *guarded) sendAfter() {
	g.mu.Lock()
	g.data["k"] = 1
	g.mu.Unlock()
	g.ch <- 1
}

// Good: a select with a default never blocks.
func (g *guarded) trySend() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case g.ch <- 1:
	default:
	}
}

// Good: plain map work under the lock.
func (g *guarded) update(k string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.data[k]++
}
