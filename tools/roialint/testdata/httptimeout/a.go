// Package httptimeout holds httptimeout fixtures: Server literals with
// and without read timeouts, and ListenAndServe package-function calls.
package httptimeout

import (
	"net/http"
	"time"
)

// Bad: no timeout field at all.
func bare() *http.Server {
	return &http.Server{Addr: ":8080"}
}

// Bad: non-pointer literal without a timeout.
func bareValue() http.Server {
	return http.Server{Handler: http.NewServeMux()}
}

// Bad: the package-level helper builds an un-hardenable default server.
func pkgListen() error {
	return http.ListenAndServe(":8080", nil)
}

// Good: ReadHeaderTimeout set.
func hardened() *http.Server {
	return &http.Server{Addr: ":8080", ReadHeaderTimeout: 5 * time.Second}
}

// Good: ReadTimeout covers the header read too.
func hardenedRead() *http.Server {
	return &http.Server{Addr: ":8080", ReadTimeout: 10 * time.Second}
}

// Good: the method on an already-hardened server is not the package func.
func methodListen() error {
	return hardened().ListenAndServe()
}
