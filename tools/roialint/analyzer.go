package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the check that produced it, and a
// human-readable message stating the violated invariant.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named check over a loaded package.
type Analyzer interface {
	Name() string
	Check(pkg *Package, r *Reporter)
}

// Finisher is implemented by analyzers that need a cross-package pass after
// every package has been checked (e.g. metric-family consistency).
type Finisher interface {
	Finish(r *Reporter)
}

// suppression is one parsed //roialint:ignore comment.
type suppression struct {
	check  string
	reason string
	line   int
	used   bool
}

// Reporter collects diagnostics and applies inline suppressions.
//
// Suppression syntax:
//
//	//roialint:ignore <check> <reason>
//
// placed either at the end of the offending line or on its own line
// directly above it. The reason is mandatory: a suppression without one is
// itself reported, because an unexplained exemption is exactly the kind of
// tribal knowledge this tool exists to eliminate.
type Reporter struct {
	fset  *token.FileSet
	root  string
	diags []Diagnostic
	// sups maps filename → line → suppressions covering that line.
	sups       map[string]map[int][]*suppression
	suppressed int
}

// NewReporter returns a reporter rendering positions relative to root.
func NewReporter(fset *token.FileSet, root string) *Reporter {
	return &Reporter{fset: fset, root: root, sups: map[string]map[int][]*suppression{}}
}

const ignorePrefix = "roialint:ignore"

// ScanSuppressions parses every //roialint:ignore comment in the package.
// Malformed suppressions (no check name, or no reason) are reported as
// findings of the pseudo-check "suppress".
func (r *Reporter) ScanSuppressions(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := r.fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) == 0 {
					r.report(pos, "suppress", "roialint:ignore needs a check name and a reason")
					continue
				}
				if len(fields) < 2 {
					r.report(pos, "suppress",
						fmt.Sprintf("roialint:ignore %s needs a reason — say why the invariant does not apply here", fields[0]))
					continue
				}
				s := &suppression{
					check:  fields[0],
					reason: strings.Join(fields[1:], " "),
					line:   pos.Line,
				}
				byLine := r.sups[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*suppression{}
					r.sups[pos.Filename] = byLine
				}
				// A comment on its own line covers the next line; a
				// trailing comment covers its own. Register both — the
				// lookup picks whichever the diagnostic lands on.
				byLine[pos.Line] = append(byLine[pos.Line], s)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], s)
			}
		}
	}
}

// Report records a diagnostic at the node's position unless a matching
// suppression covers its line.
func (r *Reporter) Report(node ast.Node, check, format string, args ...any) {
	pos := r.fset.Position(node.Pos())
	r.ReportPos(pos, check, format, args...)
}

// ReportPos is Report for a pre-computed position (used by Finish passes).
func (r *Reporter) ReportPos(pos token.Position, check, format string, args ...any) {
	for _, s := range r.sups[pos.Filename][pos.Line] {
		if s.check == check {
			s.used = true
			r.suppressed++
			return
		}
	}
	r.report(pos, check, fmt.Sprintf(format, args...))
}

func (r *Reporter) report(pos token.Position, check, msg string) {
	if rel, err := filepath.Rel(r.root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = filepath.ToSlash(rel)
	}
	r.diags = append(r.diags, Diagnostic{Pos: pos, Check: check, Message: msg})
}

// Rel renders a filename relative to the reporter's root, matching how
// diagnostic positions are printed. Analyzers use it for cross-reference
// positions embedded in messages.
func (r *Reporter) Rel(filename string) string {
	if rel, err := filepath.Rel(r.root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

// Diagnostics returns the surviving findings sorted by position, with
// exact duplicates collapsed (one string literal can trip the same rule on
// several of its lines).
func (r *Reporter) Diagnostics() []Diagnostic {
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	out := r.diags[:0]
	for i, d := range r.diags {
		if i > 0 && d == r.diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	r.diags = out
	return r.diags
}

// Suppressed reports how many findings inline suppressions absorbed.
func (r *Reporter) Suppressed() int { return r.suppressed }
