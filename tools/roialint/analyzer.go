package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the check that produced it, and a
// human-readable message stating the violated invariant. Suppressed marks
// findings absorbed by an inline //roialint:ignore directive or by the
// hotpathalloc baseline; they are excluded from the human output and the
// exit status but carried in the -json stream so CI artifacts show the
// complete picture.
type Diagnostic struct {
	Pos        token.Position
	Check      string
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// jsonDiagnostic is the -json wire form: one object per line, stable field
// names, so CI can upload findings as a machine-readable artifact.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// WriteJSONL renders diagnostics (active and suppressed) as JSON lines.
func WriteJSONL(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if err := enc.Encode(jsonDiagnostic{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Check: d.Check, Message: d.Message, Suppressed: d.Suppressed,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Analyzer is one named check. Implementations are either PackageAnalyzers
// (independent single-package passes) or GraphAnalyzers (interprocedural
// passes over the module-wide call graph).
type Analyzer interface {
	Name() string
}

// PackageAnalyzer is a check over one loaded package at a time.
type PackageAnalyzer interface {
	Analyzer
	Check(pkg *Package, r *Reporter)
}

// GraphAnalyzer is a check over the whole-module call graph: it sees every
// package at once, with per-function summaries and reachability from the
// tick entry points (see callgraph.go).
type GraphAnalyzer interface {
	Analyzer
	CheckGraph(g *Graph, r *Reporter)
}

// Finisher is implemented by analyzers that need a cross-package pass after
// every package has been checked (e.g. metric-family consistency).
type Finisher interface {
	Finish(r *Reporter)
}

// suppression is one parsed //roialint:ignore comment.
type suppression struct {
	check  string
	reason string
	line   int
	used   bool
}

// Reporter collects diagnostics and applies inline suppressions.
//
// Suppression syntax:
//
//	//roialint:ignore <check> <reason>
//
// placed either at the end of the offending line or on its own line
// directly above it. The reason is mandatory: a suppression without one is
// itself reported, because an unexplained exemption is exactly the kind of
// tribal knowledge this tool exists to eliminate.
type Reporter struct {
	fset  *token.FileSet
	root  string
	diags []Diagnostic
	// sups maps filename → line → suppressions covering that line.
	sups       map[string]map[int][]*suppression
	suppressed int
}

// NewReporter returns a reporter rendering positions relative to root.
func NewReporter(fset *token.FileSet, root string) *Reporter {
	return &Reporter{fset: fset, root: root, sups: map[string]map[int][]*suppression{}}
}

const ignorePrefix = "roialint:ignore"

// parseIgnoreDirective parses the text of one comment (without the leading
// "//") as a //roialint:ignore directive. ok reports whether the comment is
// a directive at all; a directive that is malformed (missing check name or
// reason) returns a non-empty errMsg and MUST be reported, never silently
// honored — an unparseable suppression that silently suppressed nothing
// (or worse, something) would be invisible debt.
func parseIgnoreDirective(text string) (check, reason, errMsg string, ok bool) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, ignorePrefix) {
		return "", "", "", false
	}
	rest := strings.TrimPrefix(text, ignorePrefix)
	// "roialint:ignoreXYZ" is a typo of a directive, not a new word: treat
	// anything but a field separator (or end) after the prefix as malformed.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", "roialint:ignore directive is malformed (no space after the directive name)", true
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", "roialint:ignore needs a check name and a reason", true
	}
	if len(fields) < 2 {
		return fields[0], "",
			fmt.Sprintf("roialint:ignore %s needs a reason — say why the invariant does not apply here", fields[0]), true
	}
	return fields[0], strings.Join(fields[1:], " "), "", true
}

// ScanSuppressions parses every //roialint:ignore comment in the package.
// Malformed suppressions (no check name, or no reason) are reported as
// findings of the pseudo-check "suppress".
func (r *Reporter) ScanSuppressions(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check, reason, errMsg, ok := parseIgnoreDirective(strings.TrimPrefix(c.Text, "//"))
				if !ok {
					continue
				}
				pos := r.fset.Position(c.Pos())
				if errMsg != "" {
					r.report(pos, "suppress", errMsg)
					continue
				}
				s := &suppression{check: check, reason: reason, line: pos.Line}
				byLine := r.sups[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*suppression{}
					r.sups[pos.Filename] = byLine
				}
				// A comment on its own line covers the next line; a
				// trailing comment covers its own. Register both — the
				// lookup picks whichever the diagnostic lands on.
				byLine[pos.Line] = append(byLine[pos.Line], s)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], s)
			}
		}
	}
}

// Report records a diagnostic at the node's position unless a matching
// suppression covers its line.
func (r *Reporter) Report(node ast.Node, check, format string, args ...any) {
	pos := r.fset.Position(node.Pos())
	r.ReportPos(pos, check, format, args...)
}

// ReportPos is Report for a pre-computed position (used by Finish passes).
func (r *Reporter) ReportPos(pos token.Position, check, format string, args ...any) {
	for _, s := range r.sups[pos.Filename][pos.Line] {
		if s.check == check {
			s.used = true
			r.suppressed++
			r.reportSuppressed(pos, check, fmt.Sprintf(format, args...))
			return
		}
	}
	r.report(pos, check, fmt.Sprintf(format, args...))
}

// ReportBaselined records a finding absorbed by a baseline file: suppressed
// for exit-status purposes, but visible in the -json stream.
func (r *Reporter) ReportBaselined(node ast.Node, check, format string, args ...any) {
	pos := r.fset.Position(node.Pos())
	r.suppressed++
	r.reportSuppressed(pos, check, fmt.Sprintf(format, args...))
}

func (r *Reporter) report(pos token.Position, check, msg string) {
	r.diags = append(r.diags, Diagnostic{Pos: r.rel(pos), Check: check, Message: msg})
}

func (r *Reporter) reportSuppressed(pos token.Position, check, msg string) {
	r.diags = append(r.diags, Diagnostic{Pos: r.rel(pos), Check: check, Message: msg, Suppressed: true})
}

func (r *Reporter) rel(pos token.Position) token.Position {
	if rel, err := filepath.Rel(r.root, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = filepath.ToSlash(rel)
	}
	return pos
}

// Rel renders a filename relative to the reporter's root, matching how
// diagnostic positions are printed. Analyzers use it for cross-reference
// positions embedded in messages.
func (r *Reporter) Rel(filename string) string {
	if rel, err := filepath.Rel(r.root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

// sortDiags orders diagnostics by position then check, collapsing exact
// duplicates (one string literal can trip the same rule on several lines).
func sortDiags(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return !a.Suppressed && b.Suppressed
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Diagnostics returns the surviving (non-suppressed) findings sorted by
// position.
func (r *Reporter) Diagnostics() []Diagnostic {
	r.diags = sortDiags(r.diags)
	out := make([]Diagnostic, 0, len(r.diags))
	for _, d := range r.diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// AllDiagnostics returns every finding — active and suppressed — sorted by
// position, for the -json machine output.
func (r *Reporter) AllDiagnostics() []Diagnostic {
	r.diags = sortDiags(r.diags)
	return r.diags
}

// Suppressed reports how many findings inline suppressions (or baselines)
// absorbed.
func (r *Reporter) Suppressed() int { return r.suppressed }
