package main

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strconv"
)

// calleeObj resolves the function or method object a call invokes, or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgCall reports whether call invokes a function or method declared in
// the package with the given import path, optionally restricted to names.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// isPkgFunc is isPkgCall restricted to package-level functions: a method
// with the same name declared in the same package does not match.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	if !isPkgCall(info, call, pkgPath, names...) {
		return false
	}
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// namedType unwraps pointers and aliases down to a *types.Named, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// exprKey renders an expression to a canonical string, used to identify
// "the same" mutex or field across statements (e.g. "s.mu").
func exprKey(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// stringLit returns the value of a string literal expression, descending
// through one level of fmt.Sprintf so that wrapped literal formats (the
// common label-building idiom) still yield their text.
func stringLit(info *types.Info, e ast.Expr) (string, bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(v.Value)
		if err != nil {
			return "", false
		}
		return s, true
	case *ast.CallExpr:
		if isPkgCall(info, v, "fmt", "Sprintf") && len(v.Args) > 0 {
			return stringLit(info, v.Args[0])
		}
	}
	return "", false
}

// recvFieldSel reports whether e is a selector recv.<field> on the given
// receiver identifier, returning the field name.
func recvFieldSel(e ast.Expr, recv string) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recv {
		return "", false
	}
	return sel.Sel.Name, true
}
