package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// BoundedGrowth enforces the telemetry-retention invariant: long-lived
// collector types (tracers, rings, collectors, recorders, sinks) that
// append to a struct-field slice or insert into a struct-field map must
// show a cap or age-out somewhere in the same method set — a length
// comparison, a delete, a re-slice, a ring-index overwrite, or a reset.
// An observability buffer with no bound is a slow memory leak on exactly
// the long-horizon runs the scalability experiments care about.
type BoundedGrowth struct {
	// TypePattern overrides the long-lived-type name heuristic (tests).
	TypePattern *regexp.Regexp
}

var defaultLongLived = regexp.MustCompile(`Tracer|Tracker|Ring|Collector|Recorder|Sink|Memory|Store|Series`)

func (BoundedGrowth) Name() string { return "boundedgrowth" }

type growthSite struct {
	node  ast.Node
	field string
	kind  string // "append" or "map insert"
}

func (b BoundedGrowth) Check(pkg *Package, r *Reporter) {
	pattern := b.TypePattern
	if pattern == nil {
		pattern = defaultLongLived
	}

	// Gather the method set of every matching struct type in the package.
	methods := map[string][]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			name := recvTypeName(fn.Recv.List[0].Type)
			if name == "" || !pattern.MatchString(name) {
				continue
			}
			methods[name] = append(methods[name], fn)
		}
	}

	for _, fns := range methods {
		var sites []growthSite
		bounded := map[string]bool{}
		for _, fn := range fns {
			if fn.Body == nil || len(fn.Recv.List[0].Names) == 0 {
				continue
			}
			recv := fn.Recv.List[0].Names[0].Name
			collectGrowth(pkg.Info, fn.Body, recv, &sites, bounded)
		}
		for _, s := range sites {
			if bounded[s.field] {
				continue
			}
			r.Report(s.node, "boundedgrowth",
				"unbounded %s to field %q of a long-lived type: no cap, age-out, or ring overwrite in its method set — add a bound and a dropped counter",
				s.kind, s.field)
		}
	}
}

// collectGrowth records growth sites and bounding evidence for recv.<field>
// expressions inside one method body.
func collectGrowth(info *types.Info, body *ast.BlockStmt, recv string, sites *[]growthSite, bounded map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if field, ok := recvFieldSel(lhs, recv); ok {
					switch rv := ast.Unparen(rhs).(type) {
					case *ast.CallExpr:
						// recv.f = append(recv.f, ...) grows; an append
						// onto a fresh slice (copy idiom) does not.
						if id, ok := rv.Fun.(*ast.Ident); ok && id.Name == "append" && len(rv.Args) > 0 {
							if src, ok := recvFieldSel(rv.Args[0], recv); ok && src == field {
								*sites = append(*sites, growthSite{node: n, field: field, kind: "append"})
							}
						}
						// recv.f = make(...) is a reset: evidence.
						if id, ok := rv.Fun.(*ast.Ident); ok && id.Name == "make" {
							bounded[field] = true
						}
					case *ast.SliceExpr:
						// recv.f = recv.f[...:...] truncation: evidence.
						if src, ok := recvFieldSel(rv.X, recv); ok && src == field {
							bounded[field] = true
						}
					case *ast.Ident:
						if rv.Name == "nil" {
							bounded[field] = true
						}
					}
				}
				// recv.f[k] = v: map insert grows, slice write is a ring.
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if field, ok := recvFieldSel(idx.X, recv); ok {
						t := info.TypeOf(idx.X)
						if t != nil {
							switch t.Underlying().(type) {
							case *types.Map:
								*sites = append(*sites, growthSite{node: n, field: field, kind: "map insert"})
							case *types.Slice, *types.Array:
								bounded[field] = true
							}
						}
					}
				}
			}
		case *ast.BinaryExpr:
			// len(recv.f) compared against anything: evidence of a cap.
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				for _, op := range []ast.Expr{n.X, n.Y} {
					if call, ok := ast.Unparen(op).(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
							if field, ok := recvFieldSel(call.Args[0], recv); ok {
								bounded[field] = true
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			// delete(recv.f, k): age-out evidence.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if field, ok := recvFieldSel(n.Args[0], recv); ok {
					bounded[field] = true
				}
			}
		}
		return true
	})
}

// recvTypeName extracts the base type name of a method receiver.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}
