package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Interprocedural core: a module-wide call graph with per-function
// summaries. Phase one (BuildGraph) runs once over every loaded package and
// records, for each function — declared or literal — what it calls, what it
// spawns, and a set of fact sites (wall-clock reads, global rand, map
// ranges, blocking operations, output emission, allocations, tickers).
// Phase two is the GraphAnalyzers: they combine summaries with reachability
// from the tick entry points (Server.Tick, executor worker closures,
// wire.Writer producers) to check invariants that no single-package pass
// can see.

// EdgeKind classifies how a caller reaches a callee.
type EdgeKind uint8

const (
	// EdgeCall is a direct synchronous call (including defer).
	EdgeCall EdgeKind = iota
	// EdgeSpawn is a `go` statement: the callee runs concurrently.
	EdgeSpawn
	// EdgeRef is a function value that escapes without an immediate call:
	// a literal or method value passed as an argument or assigned.
	EdgeRef
)

// Edge is one caller→callee relationship.
type Edge struct {
	Kind   EdgeKind
	Callee *FuncNode
	Site   ast.Node
	// Dynamic marks edges resolved through a module-declared interface:
	// the callee is one of possibly several implementations. Dynamic
	// edges widen reachability but are excluded from the blocking
	// fixpoint (a dynamic callee that blocks in one implementation would
	// otherwise taint every caller of the interface).
	Dynamic bool
}

// SiteKind classifies a summary fact site inside one function body.
type SiteKind uint8

const (
	SiteClock        SiteKind = iota // time.Now / time.Sleep
	SiteRandGlobal                   // math/rand global-source call
	SiteMapRange                     // range over a map
	SiteSpawn                        // `go` statement
	SiteTicker                       // time.NewTicker / time.NewTimer / time.Tick
	SiteSchedDep                     // runtime.GOMAXPROCS / runtime.NumCPU read
	SiteAllocFmt                     // fmt formatting call
	SiteAllocConcat                  // non-constant string concatenation
	SiteAllocBox                     // interface boxing at a call boundary
	SiteAllocAppend                  // append to a slice declared without capacity
	SiteAllocClosure                 // escaping closure that captures variables
)

// allocKinds maps allocation site kinds to the stable names used in the
// hotpathalloc baseline file.
var allocKinds = map[SiteKind]string{
	SiteAllocFmt:     "fmt",
	SiteAllocConcat:  "concat",
	SiteAllocBox:     "box",
	SiteAllocAppend:  "append",
	SiteAllocClosure: "closure",
}

// Site is one recorded fact inside a function body.
type Site struct {
	Kind   SiteKind
	Node   ast.Node
	Detail string
	// Target is the spawned function for SiteSpawn when statically known
	// (a `go` on a literal or module function); nil for func values and
	// non-module callees.
	Target *FuncNode
	// SortedAfter marks a map range followed by a sort.* / slices.Sort*
	// call later in the same function — the collect-then-sort idiom.
	SortedAfter bool
	// Benign marks a map-range body whose effects are order-insensitive
	// (only deletes, map writes, and scalar accumulation).
	Benign bool
}

// FuncNode is one function in the graph: a declaration or a literal.
type FuncNode struct {
	Pkg    *Package
	File   *ast.File
	Name   string        // printable: "(*Server).Tick", "Eval", "run.func1"
	Decl   *ast.FuncDecl // nil for literals
	Lit    *ast.FuncLit  // nil for declarations
	Obj    *types.Func   // nil for literals
	Parent *FuncNode     // enclosing function, for literals
	Edges  []Edge
	Sites  []*Site

	// Reachability roots.
	TickRoot     bool // method named Tick on a type named Server
	WorkerRoot   bool // literal passed to (executor).run
	WireProducer bool // signature mentions a <...>/wire.Writer

	// Direct facts, set while summarizing the body.
	blocksDirect bool
	blockWhy     string
	blockSite    ast.Node
	emitsDirect  bool
	stopsDirect  bool

	// Transitive facts, computed by fixpoint over the finished graph.
	Blocks    bool     // may block (static call closure)
	BlockWhy  string   // root-cause description of the blocking site
	BlockSite ast.Node // root-cause position
	Emits     bool     // transitively writes formatted output
	stops     bool     // transitively contains goroutine join/stop evidence

	litIndex int // running literal counter for naming child closures
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Body returns the function body, or nil for bodyless declarations.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// RelFile returns the node's file path relative to the loader root.
func (n *FuncNode) RelFile() string { return n.Pkg.RelFiles[n.File] }

// Graph is the finished module-wide call graph.
type Graph struct {
	Fset   *token.FileSet
	Module string
	Pkgs   []*Package
	Nodes  []*FuncNode

	byObj      map[*types.Func]*FuncNode
	byLit      map[*ast.FuncLit]*FuncNode
	reportable map[*Package]bool
	hot        map[*FuncNode]bool // synchronous per-tick work
	det        map[*FuncNode]bool // deterministic-output scope
}

// Reportable reports whether findings in the node's package were requested
// on the command line (the graph always spans every loaded package).
func (g *Graph) Reportable(n *FuncNode) bool { return g.reportable[n.Pkg] }

// HotPath reports whether n runs synchronously inside a tick: reachable
// from Server.Tick or an executor worker closure through static and
// interface-resolved calls.
func (g *Graph) HotPath(n *FuncNode) bool { return g.hot[n] }

// DetScope reports whether n is in the byte-identical-output scope:
// reachable from an executor worker closure or any wire.Writer producer.
func (g *Graph) DetScope(n *FuncNode) bool { return g.det[n] }

// NodeOf resolves a declared function object to its graph node, or nil.
func (g *Graph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.byObj[fn.Origin()]
}

// BuildGraph constructs the call graph over every loaded package.
// reportable marks the packages whose findings were requested; nil means
// all of them.
func BuildGraph(l *Loader, pkgs []*Package, reportable map[*Package]bool) *Graph {
	if reportable == nil {
		reportable = map[*Package]bool{}
		for _, p := range pkgs {
			reportable[p] = true
		}
	}
	g := &Graph{
		Fset: l.Fset, Module: l.Module, Pkgs: pkgs,
		byObj: map[*types.Func]*FuncNode{}, byLit: map[*ast.FuncLit]*FuncNode{},
		reportable: reportable,
	}
	b := &graphBuilder{g: g}
	b.collectModuleTypes()

	// Pass 1: a node per declared function, so calls across packages can
	// resolve no matter the processing order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				b.addDecl(pkg, f, fd)
			}
		}
	}

	// Pass 2: summarize bodies, creating literal nodes as they appear.
	for _, n := range append([]*FuncNode(nil), g.Nodes...) {
		if n.Decl != nil && n.Decl.Body != nil {
			b.buildBody(n, n.Decl.Body)
		}
	}

	g.fixpoints()
	g.hot = g.reach(func(n *FuncNode) bool { return n.TickRoot || n.WorkerRoot })
	g.det = g.reach(func(n *FuncNode) bool { return n.WorkerRoot || n.WireProducer })
	return g
}

// reach returns the closure of root nodes over synchronous call edges
// (static and interface-resolved; spawn and escaping refs excluded).
func (g *Graph) reach(isRoot func(*FuncNode) bool) map[*FuncNode]bool {
	seen := map[*FuncNode]bool{}
	var queue []*FuncNode
	for _, n := range g.Nodes {
		if isRoot(n) {
			seen[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			if e.Kind != EdgeCall {
				continue
			}
			if !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return seen
}

// fixpoints computes the transitive Blocks, Emits, and stop-evidence bits.
func (g *Graph) fixpoints() {
	for _, n := range g.Nodes {
		if n.blocksDirect {
			n.Blocks, n.BlockWhy, n.BlockSite = true, n.blockWhy, n.blockSite
		}
		n.Emits = n.emitsDirect
		n.stops = n.stopsDirect
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, e := range n.Edges {
				c := e.Callee
				// Blocking propagates only through static synchronous
				// calls: one blocking implementation of an interface must
				// not taint every caller of the interface, and a spawned
				// goroutine blocking does not block its spawner.
				if !n.Blocks && e.Kind == EdgeCall && !e.Dynamic && c.Blocks {
					n.Blocks, n.BlockWhy, n.BlockSite = true, c.BlockWhy, c.BlockSite
					changed = true
				}
				// Emission propagates through everything: output produced
				// by a callee, an implementation, or a spawned goroutine
				// is still output this function causes.
				if !n.Emits && c.Emits {
					n.Emits = true
					changed = true
				}
				// Stop evidence propagates through static calls only: a
				// spawned body that calls a helper which waits on a
				// context is joinable, but evidence found through an
				// interface is too speculative to trust.
				if !n.stops && e.Kind == EdgeCall && !e.Dynamic && c.stops {
					n.stops = true
					changed = true
				}
			}
		}
	}
}

// graphBuilder carries the per-build state.
type graphBuilder struct {
	g *Graph
	// moduleTypes are all named types declared in the module, the
	// candidate set for interface resolution.
	moduleTypes []types.Type
	// ifaceCache memoizes interface-method resolution.
	ifaceCache map[ifaceKey][]*FuncNode
}

type ifaceKey struct {
	iface  *types.Interface
	method string
}

func (b *graphBuilder) collectModuleTypes() {
	b.ifaceCache = map[ifaceKey][]*FuncNode{}
	for _, pkg := range b.g.Pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			b.moduleTypes = append(b.moduleTypes, tn.Type())
		}
	}
}

func (b *graphBuilder) addDecl(pkg *Package, f *ast.File, fd *ast.FuncDecl) *FuncNode {
	n := &FuncNode{Pkg: pkg, File: f, Decl: fd, Name: declName(fd)}
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		n.Obj = obj
		b.g.byObj[obj] = n
		if sig, ok := obj.Type().(*types.Signature); ok {
			n.WireProducer = sigMentionsWireWriter(sig)
			n.TickRoot = fd.Name.Name == "Tick" && sig.Recv() != nil && isServerType(sig.Recv().Type())
		}
	}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *graphBuilder) addLit(parent *FuncNode, lit *ast.FuncLit) *FuncNode {
	parent.litIndex++
	n := &FuncNode{
		Pkg: parent.Pkg, File: parent.File, Lit: lit, Parent: parent,
		Name: fmtLitName(parent.Name, parent.litIndex),
	}
	if sig, ok := parent.Pkg.Info.TypeOf(lit).(*types.Signature); ok {
		n.WireProducer = sigMentionsWireWriter(sig)
	}
	b.g.byLit[lit] = n
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + typeExprName(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

func typeExprName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return "*" + typeExprName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return typeExprName(t.X)
	case *ast.IndexListExpr:
		return typeExprName(t.X)
	}
	return "?"
}

func fmtLitName(parent string, idx int) string {
	return parent + ".func" + itoa(idx)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// isServerType reports whether t (behind pointers) is a named type called
// Server — the tick-loop owner, matched by name so fixtures participate.
func isServerType(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Name() == "Server"
}

// sigMentionsWireWriter reports whether any receiver, parameter, or result
// is (a pointer to) a type named Writer declared in a package whose import
// path ends in "/wire" or is "wire" — the wire producers whose byte output
// must be deterministic.
func sigMentionsWireWriter(sig *types.Signature) bool {
	check := func(t types.Type) bool {
		n := namedType(t)
		if n == nil || n.Obj().Pkg() == nil || n.Obj().Name() != "Writer" {
			return false
		}
		p := n.Obj().Pkg().Path()
		return p == "wire" || strings.HasSuffix(p, "/wire")
	}
	if sig.Recv() != nil && check(sig.Recv().Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if check(sig.Params().At(i).Type()) {
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if check(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// litContext records how an upcoming literal is used, discovered at its
// enclosing call/go/defer statement (parents visit before children).
type litContext struct {
	kind   EdgeKind
	worker bool
}

// buildBody summarizes one function body: edges, fact sites, and direct
// blocking/emission/stop evidence. Nested literals get their own nodes and
// recursive summaries; their subtrees are skipped here.
func (b *graphBuilder) buildBody(n *FuncNode, body *ast.BlockStmt) {
	info := n.Pkg.Info
	litCtx := map[*ast.FuncLit]litContext{}
	goTarget := map[*ast.FuncLit]*Site{}
	processed := map[*ast.CallExpr]bool{}
	// selectComm collects channel operations that appear as select
	// communication clauses: their blocking behavior is attributed to the
	// select statement, not the individual op.
	selectComm := map[ast.Node]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc := cl.(*ast.CommClause)
			if cc.Comm != nil {
				markCommOps(cc.Comm, selectComm)
			}
		}
		return true
	})
	// bareSlices are local slice variables declared without values or
	// capacity: appends onto them reallocate as they grow.
	bareSlices := bareSliceVars(info, body)
	var sortCalls []token.Pos
	var mapRanges []*Site

	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			child := b.addLit(n, x)
			ctx, ok := litCtx[x]
			if !ok {
				ctx = litContext{kind: EdgeRef}
			}
			child.WorkerRoot = ctx.worker
			n.Edges = append(n.Edges, Edge{Kind: ctx.kind, Callee: child, Site: x})
			if s := goTarget[x]; s != nil {
				s.Target = child
			}
			// A literal that escapes (passed, assigned, or spawned)
			// allocates its closure when it captures variables; an
			// immediately-invoked literal does not escape.
			if ctx.kind != EdgeCall {
				if caps := capturedVars(info, n, x); len(caps) > 0 {
					n.Sites = append(n.Sites, &Site{
						Kind: SiteAllocClosure, Node: x,
						Detail: strings.Join(caps, ", "),
					})
				}
			}
			b.buildBody(child, x.Body)
			return false
		case *ast.GoStmt:
			processed[x.Call] = true
			site := &Site{Kind: SiteSpawn, Node: x}
			n.Sites = append(n.Sites, site)
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				litCtx[lit] = litContext{kind: EdgeSpawn}
				goTarget[lit] = site
			}
			b.handleCall(n, x.Call, EdgeSpawn, litCtx, site)
		case *ast.DeferStmt:
			processed[x.Call] = true
			// defer close(ch) is a completion signal: someone on the
			// other end joins this goroutine.
			if id, ok := ast.Unparen(x.Call.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					n.stopsDirect = true
				}
			}
			b.handleCall(n, x.Call, EdgeCall, litCtx, nil)
		case *ast.CallExpr:
			if !processed[x] {
				b.handleCall(n, x, EdgeCall, litCtx, nil)
			}
		case *ast.SendStmt:
			if !selectComm[x] {
				b.block(n, x, "channel send")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				n.stopsDirect = true
				if !selectComm[x] {
					b.block(n, x, "channel receive")
				}
			}
		case *ast.SelectStmt:
			n.stopsDirect = true
			hasDefault := false
			for _, cl := range x.Body.List {
				if cl.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				b.block(n, x, "select without default")
			}
		case *ast.RangeStmt:
			switch info.TypeOf(x.X).Underlying().(type) {
			case *types.Map:
				s := &Site{Kind: SiteMapRange, Node: x, Benign: benignMapRangeBody(info, x)}
				n.Sites = append(n.Sites, s)
				mapRanges = append(mapRanges, s)
			case *types.Chan:
				n.stopsDirect = true
				b.block(n, x, "range over channel")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isNonConstString(info, x) {
				n.Sites = append(n.Sites, &Site{Kind: SiteAllocConcat, Node: x})
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info.TypeOf(x.Lhs[0])) {
				n.Sites = append(n.Sites, &Site{Kind: SiteAllocConcat, Node: x})
			}
			// A literal assigned to a plain local (helper := func(...){...})
			// stays on the stack and runs synchronously when called:
			// treat it as a call edge, not an escaping reference.
			for i, rhs := range x.Rhs {
				lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
				if !ok || i >= len(x.Lhs) {
					continue
				}
				if _, isIdent := ast.Unparen(x.Lhs[i]).(*ast.Ident); isIdent {
					if _, exists := litCtx[lit]; !exists {
						litCtx[lit] = litContext{kind: EdgeCall}
					}
				}
			}
		}
		return true
	})

	// Second look at calls we could only classify structurally above:
	// sort evidence for map ranges and appends onto bare slices.
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSortCall(info, call) {
			sortCalls = append(sortCalls, call.Pos())
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				if dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if obj := info.Uses[dst]; obj != nil && bareSlices[obj] {
						n.Sites = append(n.Sites, &Site{Kind: SiteAllocAppend, Node: call, Detail: dst.Name})
					}
				}
			}
		}
		return true
	})
	for _, s := range mapRanges {
		end := s.Node.End()
		for _, p := range sortCalls {
			if p > end {
				s.SortedAfter = true
				break
			}
		}
	}
}

// markCommOps marks the channel operations in a select communication
// clause so the general send/receive rules skip them.
func markCommOps(stmt ast.Stmt, set map[ast.Node]bool) {
	set[stmt] = true
	ast.Inspect(stmt, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.SendStmt:
			set[x] = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				set[x] = true
			}
		}
		return true
	})
}

func (b *graphBuilder) block(n *FuncNode, site ast.Node, why string) {
	if !n.blocksDirect {
		n.blocksDirect, n.blockWhy, n.blockSite = true, why, site
	}
}

// handleCall classifies one call expression: an edge for module callees
// (including interface-method resolution), fact sites for the standard
// library, and boxing detection at the argument boundary.
func (b *graphBuilder) handleCall(n *FuncNode, call *ast.CallExpr, kind EdgeKind, litCtx map[*ast.FuncLit]litContext, spawn *Site) {
	info := n.Pkg.Info

	// Literal arguments: executor worker closures are roots; everything
	// else passed as an argument escapes (EdgeRef).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "run" && isExecutorType(info.TypeOf(sel.X)) {
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				litCtx[lit] = litContext{kind: EdgeRef, worker: true}
			}
		}
	} else {
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				if _, exists := litCtx[lit]; !exists {
					litCtx[lit] = litContext{kind: EdgeRef}
				}
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if _, exists := litCtx[lit]; !exists {
			litCtx[lit] = litContext{kind: kind}
		}
	}

	// Module function and method values passed as arguments escape too.
	for _, arg := range call.Args {
		if fn := funcValueObj(info, arg); fn != nil {
			if target := b.g.byObj[fn.Origin()]; target != nil {
				n.Edges = append(n.Edges, Edge{Kind: EdgeRef, Callee: target, Site: arg})
			}
		}
	}

	obj := calleeObj(info, call)
	fn, _ := obj.(*types.Func)
	if fn == nil {
		b.checkBoxing(n, call, nil)
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	b.checkBoxing(n, call, sig)

	// Interface-method call: resolve to every module implementation.
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		if fn.Pkg() != nil && b.inModule(fn.Pkg().Path()) {
			for _, impl := range b.resolveInterface(sig.Recv().Type(), fn.Name(), fn.Pkg()) {
				n.Edges = append(n.Edges, Edge{Kind: kind, Callee: impl, Site: call, Dynamic: true})
				if spawn != nil && spawn.Target == nil {
					spawn.Target = impl
				}
			}
		}
		return
	}

	// Module callee: a static edge.
	if target := b.g.byObj[fn.Origin()]; target != nil {
		n.Edges = append(n.Edges, Edge{Kind: kind, Callee: target, Site: call})
		if spawn != nil {
			spawn.Target = target
		}
		return
	}

	// Non-module callee: classify the standard-library facts we track.
	b.classifyStdCall(n, call, fn, sig)
}

// inModule reports whether an import path belongs to the analyzed module.
func (b *graphBuilder) inModule(path string) bool {
	return path == b.g.Module || strings.HasPrefix(path, b.g.Module+"/")
}

// classifyStdCall records fact sites for standard-library calls.
func (b *graphBuilder) classifyStdCall(n *FuncNode, call *ast.CallExpr, fn *types.Func, sig *types.Signature) {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	recv := sig != nil && sig.Recv() != nil

	switch pkg {
	case "time":
		if !recv {
			switch name {
			case "Now":
				n.Sites = append(n.Sites, &Site{Kind: SiteClock, Node: call, Detail: "Now"})
			case "Sleep":
				n.Sites = append(n.Sites, &Site{Kind: SiteClock, Node: call, Detail: "Sleep"})
				b.block(n, call, "time.Sleep")
			case "NewTicker", "NewTimer", "Tick":
				n.Sites = append(n.Sites, &Site{Kind: SiteTicker, Node: call, Detail: name})
			}
		}
	case "math/rand", "math/rand/v2":
		if !recv {
			switch name {
			case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
				// Constructors for injected sources are the approved idiom.
			default:
				n.Sites = append(n.Sites, &Site{Kind: SiteRandGlobal, Node: call, Detail: pkg + "." + name})
			}
		}
	case "runtime":
		if !recv && (name == "GOMAXPROCS" || name == "NumCPU") {
			n.Sites = append(n.Sites, &Site{Kind: SiteSchedDep, Node: call, Detail: "runtime." + name})
		}
	case "net":
		b.block(n, call, "net call (net."+name+")")
	case "net/http":
		b.block(n, call, "net/http call")
	case "fmt":
		if !recv {
			switch name {
			case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
				n.emitsDirect = true
				n.Sites = append(n.Sites, &Site{Kind: SiteAllocFmt, Node: call, Detail: "fmt." + name})
			case "Sprint", "Sprintf", "Sprintln", "Errorf":
				n.Sites = append(n.Sites, &Site{Kind: SiteAllocFmt, Node: call, Detail: "fmt." + name})
			}
		}
	case "io":
		if !recv && (name == "WriteString" || name == "Copy") {
			n.emitsDirect = true
		}
	case "encoding/json":
		if recv && name == "Encode" && isNamed(sig.Recv().Type(), "encoding/json", "Encoder") {
			n.emitsDirect = true
		}
	case "strings":
		if recv && strings.HasPrefix(name, "Write") && isNamed(sig.Recv().Type(), "strings", "Builder") {
			n.emitsDirect = true
		}
	case "bytes":
		if recv && strings.HasPrefix(name, "Write") && isNamed(sig.Recv().Type(), "bytes", "Buffer") {
			n.emitsDirect = true
		}
	case "sync":
		if recv && name == "Done" && isNamed(sig.Recv().Type(), "sync", "WaitGroup") {
			n.stopsDirect = true
		}
	case "context":
		if name == "Done" {
			n.stopsDirect = true
		}
	}
}

// checkBoxing records an interface-boxing site when a call passes concrete
// values into interface-typed (including variadic ...any) parameters. fmt
// calls are exempt here — they already carry a SiteAllocFmt.
func (b *graphBuilder) checkBoxing(n *FuncNode, call *ast.CallExpr, sig *types.Signature) {
	if sig == nil {
		t, _ := n.Pkg.Info.TypeOf(call.Fun).(*types.Signature)
		sig = t
	}
	if sig == nil {
		return
	}
	if obj := calleeObj(n.Pkg.Info, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		return
	}
	boxed := 0
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // a ...slice pass-through does not box
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			// A type-parameter's underlying is its constraint interface, but
			// generic calls instantiate at compile time — nothing boxes.
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := n.Pkg.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		// Pointer-shaped values fit the interface word directly — the
		// conversion itself does not allocate.
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue
		case *types.Basic:
			if at.Underlying().(*types.Basic).Kind() == types.UntypedNil {
				continue
			}
		}
		boxed++
	}
	if boxed > 0 {
		n.Sites = append(n.Sites, &Site{Kind: SiteAllocBox, Node: call, Detail: itoa(boxed) + " arg(s)"})
	}
}

// resolveInterface finds every module-declared type implementing the given
// interface and returns the graph nodes of their named method. pkg is the
// interface's declaring package, needed to match unexported method names.
func (b *graphBuilder) resolveInterface(recv types.Type, method string, pkg *types.Package) []*FuncNode {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := ifaceKey{iface, method}
	if impls, ok := b.ifaceCache[key]; ok {
		return impls
	}
	var impls []*FuncNode
	for _, t := range b.moduleTypes {
		if types.IsInterface(t.Underlying()) {
			continue
		}
		ptr := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, pkg, method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := b.g.byObj[fn.Origin()]; node != nil {
			impls = append(impls, node)
		}
	}
	b.ifaceCache[key] = impls
	return impls
}

// funcValueObj returns the declared function a bare identifier or selector
// argument denotes (a function, method value, or method expression), or
// nil. Only called on argument positions, never on the call's Fun.
func funcValueObj(info *types.Info, arg ast.Expr) *types.Func {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			if sel.Kind() == types.MethodExpr || sel.Kind() == types.MethodVal {
				fn, _ := sel.Obj().(*types.Func)
				return fn
			}
			return nil
		}
		// Qualified identifier (pkg.Fn): no selection entry.
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// capturedVars lists the variables a literal captures from its enclosing
// functions — the free variables that force a heap-allocated closure.
func capturedVars(info *types.Info, parent *FuncNode, lit *ast.FuncLit) []string {
	type span struct{ lo, hi token.Pos }
	var outer []span
	for p := parent; p != nil; p = p.Parent {
		if p.Decl != nil {
			outer = append(outer, span{p.Decl.Pos(), p.Decl.End()})
		} else {
			outer = append(outer, span{p.Lit.Pos(), p.Lit.End()})
		}
	}
	seen := map[string]bool{}
	var out []string
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		p := v.Pos()
		if p >= lit.Pos() && p < lit.End() {
			return true // the literal's own local or parameter
		}
		for _, s := range outer {
			if p >= s.lo && p < s.hi {
				if !seen[v.Name()] {
					seen[v.Name()] = true
					out = append(out, v.Name())
				}
				break
			}
		}
		return true
	})
	sort.Strings(out)
	return out
}

// bareSliceVars collects local slice variables declared with no value and
// no capacity (`var x []T`): growing them by append reallocates.
func bareSliceVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		decl, ok := x.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if _, ok := obj.Type().Underlying().(*types.Slice); ok {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isSortCall reports whether call invokes sort.* or slices.Sort* — the
// evidence that map keys collected by a preceding range get ordered.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(obj.Name(), "Sort")
	}
	return false
}

// benignMapRangeBody reports whether a map-range body is order-insensitive:
// only deletes, writes into maps, and scalar accumulation — no calls (other
// than the delete builtin), sends, spawns, appends, early exits, or writes
// through ordered indices.
func benignMapRangeBody(info *types.Info, rng *ast.RangeStmt) bool {
	benign := true
	ast.Inspect(rng.Body, func(x ast.Node) bool {
		if !benign {
			return false
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			// Type conversions (float64(v), ID(k), ...) are values, not
			// effects.
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
				return true
			}
			id, ok := ast.Unparen(x.Fun).(*ast.Ident)
			if !ok {
				benign = false
				return false
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				benign = false
				return false
			}
			switch id.Name {
			case "delete", "len", "cap", "min", "max":
			default:
				benign = false
				return false
			}
		case *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt, *ast.BranchStmt:
			benign = false
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := info.TypeOf(idx.X).Underlying().(*types.Map); !isMap {
						benign = false // slice/array writes are order-sensitive
						return false
					}
				}
			}
		}
		return true
	})
	return benign
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	bt, ok := t.Underlying().(*types.Basic)
	return ok && bt.Info()&types.IsString != 0
}

func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	return isStringType(tv.Type)
}
