package main

import (
	"strings"
)

// TickClock keeps simulation and experiment code clock-injectable: direct
// time.Now() / time.Sleep() calls are allowed only at the approved
// real-time call sites (the tick loop, the monitor, and telemetry, which
// measure wall time by design). Everywhere else, code must take a clock —
// referencing time.Now as a *value* to inject it is fine; calling it
// inline is not, because it silently couples experiments to wall time and
// makes T(l,n,m) measurements unreproducible.
//
// The check is interprocedural for the tick executor: closures handed to
// (executor).run execute on worker goroutines, where even the approved
// files must read time through the executor's injected clock — and so must
// every function those closures call, transitively.
type TickClock struct {
	// Allowed entries are substring-matched against the file path
	// relative to the module root; test files are always exempt.
	Allowed []string
}

// defaultTickClockAllowed is the repo's approved real-time surface.
var defaultTickClockAllowed = []string{
	"internal/rtf/server/tick.go",
	"internal/rtf/monitor/",
	"internal/telemetry/",
}

func (TickClock) Name() string { return "tickclock" }

func (t TickClock) CheckGraph(g *Graph, r *Reporter) {
	allowed := t.Allowed
	if allowed == nil {
		allowed = defaultTickClockAllowed
	}

	// File-scoped rule: outside the approved surface, any direct wall
	// clock read is a finding.
	for _, n := range g.Nodes {
		if !g.Reportable(n) || matchesAny(n.RelFile(), allowed) {
			continue
		}
		for _, s := range n.Sites {
			if s.Kind != SiteClock {
				continue
			}
			r.Report(s.Node, "tickclock",
				"direct time.%s() outside the approved tick/monitor/telemetry call sites; inject a clock so simulations stay deterministic", s.Detail)
		}
	}

	// Worker rule: walk the static call closure of every executor worker
	// closure. Clock reads in approved files are only exempt on the tick
	// goroutine — a worker (or anything it calls) reading wall time skews
	// per-item accounting across worker counts.
	seen := map[*Site]bool{}
	for _, root := range g.Nodes {
		if !root.WorkerRoot {
			continue
		}
		via := map[*FuncNode]*FuncNode{root: nil}
		queue := []*FuncNode{root}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if g.Reportable(n) && matchesAny(n.RelFile(), allowed) {
				for _, s := range n.Sites {
					if s.Kind != SiteClock || seen[s] {
						continue
					}
					seen[s] = true
					if n == root {
						r.Report(s.Node, "tickclock",
							"direct time.%s() inside an executor worker; workers must read time through the executor's injected clock", s.Detail)
					} else {
						r.Report(s.Node, "tickclock",
							"direct time.%s() in %s, which executor workers reach (via %s); workers must read time through the executor's injected clock",
							s.Detail, n.Name, callChain(via, n))
					}
				}
			}
			for _, e := range n.Edges {
				if e.Kind != EdgeCall || e.Dynamic {
					continue
				}
				if _, ok := via[e.Callee]; !ok {
					via[e.Callee] = n
					queue = append(queue, e.Callee)
				}
			}
		}
	}
}

// callChain renders the BFS path from a worker root to n, for diagnostics.
func callChain(via map[*FuncNode]*FuncNode, n *FuncNode) string {
	var parts []string
	for p := via[n]; p != nil; p = via[p] {
		parts = append(parts, p.Name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " → ")
}

func matchesAny(rel string, pats []string) bool {
	for _, p := range pats {
		if strings.Contains(rel, p) {
			return true
		}
	}
	return false
}
