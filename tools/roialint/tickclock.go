package main

import (
	"go/ast"
	"strings"
)

// TickClock keeps simulation and experiment code clock-injectable: direct
// time.Now() / time.Sleep() calls are allowed only at the approved
// real-time call sites (the tick loop, the monitor, and telemetry, which
// measure wall time by design). Everywhere else, code must take a clock —
// referencing time.Now as a *value* to inject it is fine; calling it
// inline is not, because it silently couples experiments to wall time and
// makes T(l,n,m) measurements unreproducible.
type TickClock struct {
	// Allowed entries are substring-matched against the file path
	// relative to the module root; test files are always exempt.
	Allowed []string
}

// defaultTickClockAllowed is the repo's approved real-time surface.
var defaultTickClockAllowed = []string{
	"internal/rtf/server/tick.go",
	"internal/rtf/monitor/",
	"internal/telemetry/",
}

func (TickClock) Name() string { return "tickclock" }

func (t TickClock) Check(pkg *Package, r *Reporter) {
	allowed := t.Allowed
	if allowed == nil {
		allowed = defaultTickClockAllowed
	}
	for _, f := range pkg.Files {
		rel := pkg.RelFiles[f]
		if matchesAny(rel, allowed) {
			// Approved wall-clock surface — but closures handed to the tick
			// executor run on worker goroutines, where even these files must
			// read time through the executor's injected clock.
			for _, lit := range executorWorkerFuncs(pkg, f) {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if isPkgCall(pkg.Info, call, "time", "Now", "Sleep") {
						obj := calleeObj(pkg.Info, call)
						r.Report(call, "tickclock",
							"direct time.%s() inside an executor worker; workers must read time through the executor's injected clock", obj.Name())
					}
					return true
				})
			}
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgCall(pkg.Info, call, "time", "Now", "Sleep") {
				obj := calleeObj(pkg.Info, call)
				r.Report(call, "tickclock",
					"direct time.%s() outside the approved tick/monitor/telemetry call sites; inject a clock so simulations stay deterministic", obj.Name())
			}
			return true
		})
	}
}

func matchesAny(rel string, pats []string) bool {
	for _, p := range pats {
		if strings.Contains(rel, p) {
			return true
		}
	}
	return false
}
