package main

import (
	"go/ast"
)

// HTTPTimeout enforces the slowloris-hardening invariant every PR so far
// has applied by hand: an http.Server must set ReadHeaderTimeout (or the
// stricter ReadTimeout) so a client that dribbles header bytes cannot pin
// a connection forever. It also flags http.ListenAndServe(TLS), which
// constructs an un-hardenable default server internally.
type HTTPTimeout struct{}

func (HTTPTimeout) Name() string { return "httptimeout" }

func (HTTPTimeout) Check(pkg *Package, r *Reporter) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if !isNamed(pkg.Info.TypeOf(n), "net/http", "Server") {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok &&
						(key.Name == "ReadHeaderTimeout" || key.Name == "ReadTimeout") {
						return true
					}
				}
				r.Report(n, "httptimeout",
					"http.Server literal without ReadHeaderTimeout: a slow-header client can hold the connection open forever")
			case *ast.CallExpr:
				if isPkgFunc(pkg.Info, n, "net/http", "ListenAndServe", "ListenAndServeTLS") {
					r.Report(n, "httptimeout",
						"http.ListenAndServe uses a default http.Server with no timeouts; construct an http.Server with ReadHeaderTimeout instead")
				}
			}
			return true
		})
	}
}
