package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked local package: the shared unit every analyzer
// consumes. Files and type information share a single token.FileSet so that
// diagnostics from different analyzers sort and render consistently.
type Package struct {
	Path  string // import path ("roia/internal/telemetry")
	Dir   string // absolute directory
	Files []*ast.File
	// RelFiles maps each *ast.File to its path relative to the loader
	// root, using forward slashes — the form analyzers match against
	// (e.g. "internal/rtf/server/tick.go") and diagnostics print.
	RelFiles map[*ast.File]string
	Types    *types.Package
	Info     *types.Info
}

// Loader parses and type-checks packages of one local module, resolving
// module-internal imports itself and delegating standard-library imports to
// the source importer (stdlib only — no go/packages dependency).
type Loader struct {
	Root   string // module root (absolute)
	Module string // module path from go.mod
	Fset   *token.FileSet

	std  types.ImporterFrom
	pkgs map[string]*Package // by import path, memoized
	errs []error
}

// NewLoader returns a loader rooted at dir, which must contain go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   abs,
		Module: mod,
		Fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:   map[string]*Package{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// LoadAll walks the module tree and loads every package that contains
// non-test Go files, skipping testdata, hidden, and VCS directories.
// Packages are returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		path := l.Module
		if rel != "." {
			path = l.Module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			l.errs = append(l.errs, err)
			continue
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	if len(l.errs) > 0 {
		return out, fmt.Errorf("%d package(s) failed to load (first: %v)", len(l.errs), l.errs[0])
	}
	return out, nil
}

// LoadDir loads the single package in dir under the given import path —
// used by the golden-file tests to load fixture packages from testdata.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// load parses and type-checks one package directory, memoized by path.
// Test files are excluded: every analyzer's invariants target production
// code, and tests routinely use real clocks and ad-hoc servers.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("%s: import cycle", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle guard

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, RelFiles: map[*ast.File]string{}}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(l.Root, full)
		if err != nil {
			rel = full
		}
		pkg.Files = append(pkg.Files, f)
		pkg.RelFiles[f] = filepath.ToSlash(rel)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("%s: no Go files in %s", path, dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(importPath, fromDir string) (*types.Package, error) {
			return l.resolve(importPath)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, pkg.Files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type errors (first: %v)", path, typeErrs[0])
	}
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[path] = pkg
	return pkg, nil
}

// resolve maps an import path to a type-checked package: module-internal
// paths recurse through load, everything else goes to the source importer.
func (l *Loader) resolve(importPath string) (*types.Package, error) {
	if importPath == l.Module || strings.HasPrefix(importPath, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.Module), "/")
		dir := filepath.Join(l.Root, filepath.FromSlash(rel))
		pkg, err := l.load(importPath, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(importPath, l.Root, 0)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path, dir string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path, "") }
