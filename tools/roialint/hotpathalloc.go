package main

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// HotPathAlloc flags avoidable heap allocations in tick-reachable
// functions — everything the call graph reaches synchronously from
// Server.Tick or an executor worker closure. Allocation on that path is
// deferred latency: it surfaces as GC pauses in exactly the tick tails the
// variability harness measures (ROADMAP item 2, zero-allocation hot path).
//
// Five allocation kinds are tracked: fmt formatting calls, non-constant
// string concatenation, interface boxing at call boundaries, appends onto
// slices declared without capacity, and escaping closures that capture
// variables.
//
// Existing debt is frozen in a committed baseline file rather than
// suppressed inline: each line is "file<TAB>function<TAB>kind<TAB>count",
// keyed by function name instead of line number so unrelated edits don't
// invalidate it. Findings within the baseline count are suppressed (still
// visible in -json); any excess — new debt — fails the run. Regenerate
// with `go run ./tools/roialint -write-hotpath-baseline ./...` and review
// the diff: shrinking counts is progress, growing ones need a reason.
type HotPathAlloc struct {
	// BaselinePath is the baseline file to read; empty means no baseline
	// (every allocation site reports).
	BaselinePath string
	// WriteBaseline regenerates BaselinePath from the current tree
	// instead of reporting.
	WriteBaseline bool
}

func (HotPathAlloc) Name() string { return "hotpathalloc" }

// baselineKey identifies one debt bucket.
type baselineKey struct {
	File string
	Func string
	Kind string
}

func (h HotPathAlloc) CheckGraph(g *Graph, r *Reporter) {
	baseline := map[baselineKey]int{}
	if h.BaselinePath != "" && !h.WriteBaseline {
		var err error
		baseline, err = readBaseline(h.BaselinePath)
		if err != nil {
			r.ReportPos(g.Fset.Position(0), "hotpathalloc", "baseline: %v", err)
			return
		}
	}
	counts := map[baselineKey]int{}
	for _, n := range g.Nodes {
		if !g.Reportable(n) || !g.HotPath(n) {
			continue
		}
		for _, s := range n.Sites {
			kind, ok := allocKinds[s.Kind]
			if !ok {
				continue
			}
			key := baselineKey{File: n.RelFile(), Func: n.Name, Kind: kind}
			counts[key]++
			if h.WriteBaseline {
				continue
			}
			msg := allocMessage(s, n)
			// Sites appear in source order; the first `baseline[key]`
			// occurrences are frozen debt, anything beyond is new.
			if counts[key] <= baseline[key] {
				r.ReportBaselined(s.Node, "hotpathalloc", "%s (baselined)", msg)
			} else {
				r.Report(s.Node, "hotpathalloc", "%s", msg)
			}
		}
	}
	if h.WriteBaseline {
		if err := writeBaseline(h.BaselinePath, counts); err != nil {
			r.ReportPos(g.Fset.Position(0), "hotpathalloc", "write baseline: %v", err)
		}
	}
}

func allocMessage(s *Site, n *FuncNode) string {
	switch s.Kind {
	case SiteAllocFmt:
		return fmt.Sprintf("%s allocates in tick-reachable %s — build the string with append/strconv into a reused buffer", s.Detail, n.Name)
	case SiteAllocConcat:
		return fmt.Sprintf("string concatenation allocates in tick-reachable %s", n.Name)
	case SiteAllocBox:
		return fmt.Sprintf("interface boxing (%s) allocates in tick-reachable %s", s.Detail, n.Name)
	case SiteAllocAppend:
		return fmt.Sprintf("append to %s, declared without capacity, reallocates in tick-reachable %s — preallocate or reuse a buffer", s.Detail, n.Name)
	case SiteAllocClosure:
		return fmt.Sprintf("escaping closure capturing [%s] allocates in tick-reachable %s", s.Detail, n.Name)
	}
	return "allocation in tick-reachable " + n.Name
}

// readBaseline parses a baseline file: tab-separated file/function/kind/
// count lines, '#' comments and blanks ignored.
func readBaseline(path string) (map[baselineKey]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[baselineKey]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("%s:%d: want 4 tab-separated fields, got %d", path, i+1, len(parts))
		}
		count, err := strconv.Atoi(parts[3])
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, i+1, parts[3])
		}
		out[baselineKey{File: parts[0], Func: parts[1], Kind: parts[2]}] = count
	}
	return out, nil
}

// writeBaseline renders the current debt sorted by file/function/kind so
// regeneration diffs are stable and reviewable.
func writeBaseline(path string, counts map[baselineKey]int) error {
	keys := make([]baselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Kind < b.Kind
	})
	var sb strings.Builder
	sb.WriteString("# roialint hotpathalloc baseline — frozen allocation debt on the tick path.\n")
	sb.WriteString("# file\tfunction\tkind\tcount. Regenerate: go run ./tools/roialint -write-hotpath-baseline ./...\n")
	sb.WriteString("# Shrink counts by fixing sites; never grow one without a review.\n")
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s\t%s\t%s\t%d\n", k.File, k.Func, k.Kind, counts[k])
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
