package main

import (
	"go/ast"
	"go/types"
)

// Executor-worker awareness, shared by tickclock and lockhold: function
// literals passed to an executor's run method execute on worker goroutines
// of the tick pipeline, not on the tick goroutine. Two rules follow from
// the executor's documented contract:
//
//   - workers read time only through the executor's injected clock (so
//     simulated runs stay deterministic and per-item CPU accounting stays
//     consistent across worker counts) — enforced by tickclock even inside
//     its approved wall-clock files;
//   - workers never touch a mutex (the tick goroutine holds the server
//     mutex for the whole tick; a worker locking it deadlocks, and any
//     other lock reintroduces cross-worker coupling) — enforced by
//     lockhold.

// executorWorkerFuncs returns the function literals in f passed as
// arguments to a run method on a value whose (possibly pointered) named
// type is called "executor".
func executorWorkerFuncs(pkg *Package, f *ast.File) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "run" {
			return true
		}
		if !isExecutorType(pkg.Info.TypeOf(sel.X)) {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				out = append(out, lit)
			}
		}
		return true
	})
	return out
}

func isExecutorType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "executor"
}
