package main

import (
	"go/ast"
)

// GoroutineLife checks goroutine and timer lifecycle: in a server meant to
// run for weeks (ROADMAP item 1 turns replicas into long-lived fleet
// processes), a goroutine with no termination path is a slow leak, and an
// unstopped time.Ticker pins both a goroutine and a heap timer forever.
//
// Rules:
//
//   - every `go` statement needs join/stop evidence in the spawned
//     function, found interprocedurally through static calls: a
//     WaitGroup.Done, a channel receive or select (typically on a done or
//     ctx.Done channel), a range over a channel, or a deferred close of a
//     completion channel;
//   - every time.NewTicker/NewTimer assigned to a local must have a Stop
//     on the same expression in the same function (a deferred Stop is the
//     idiom). Creations assigned to struct fields are skipped — their Stop
//     lives in another method and ownership is the type's business;
//   - time.Tick is always flagged: its ticker can never be stopped.
type GoroutineLife struct{}

func (GoroutineLife) Name() string { return "goroutinelife" }

func (GoroutineLife) CheckGraph(g *Graph, r *Reporter) {
	for _, n := range g.Nodes {
		if !g.Reportable(n) {
			continue
		}
		var tickerSites []*Site
		for _, s := range n.Sites {
			switch s.Kind {
			case SiteSpawn:
				if s.Target == nil {
					r.Report(s.Node, "goroutinelife",
						"goroutine spawned in %s on a dynamic function value — no join/stop evidence is visible; spawn a named function or closure with a termination path", n.Name)
					continue
				}
				if !s.Target.stops {
					r.Report(s.Node, "goroutinelife",
						"goroutine spawned in %s has no join/stop evidence (no WaitGroup.Done, channel receive/select, ctx.Done, or deferred close) — it can outlive its owner", n.Name)
				}
			case SiteTicker:
				if s.Detail == "Tick" {
					r.Report(s.Node, "goroutinelife",
						"time.Tick in %s leaks its ticker — use time.NewTicker with a deferred Stop", n.Name)
					continue
				}
				tickerSites = append(tickerSites, s)
			}
		}
		if len(tickerSites) > 0 {
			checkTickerStops(g, n, tickerSites, r)
		}
	}
}

// checkTickerStops matches NewTicker/NewTimer creations against Stop calls
// within the same function body.
func checkTickerStops(g *Graph, n *FuncNode, sites []*Site, r *Reporter) {
	body := n.Body()
	if body == nil {
		return
	}
	info := n.Pkg.Info

	// Creation targets: the expression each ticker is assigned to, by
	// canonical text. Field assignments transfer ownership out of this
	// function and are excluded from the check.
	assignedTo := map[*Site]string{}
	fieldOwned := map[*Site]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			for _, s := range sites {
				if s.Node != rhs {
					continue
				}
				switch lhs := ast.Unparen(as.Lhs[i]).(type) {
				case *ast.Ident:
					assignedTo[s] = lhs.Name
				case *ast.SelectorExpr:
					fieldOwned[s] = true
					_ = lhs
				}
			}
		}
		return true
	})

	// Stop calls on *time.Ticker / *time.Timer receivers, by receiver text.
	stopped := map[string]bool{}
	anyStops := 0
	ast.Inspect(body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Stop" {
			return true
		}
		t := info.TypeOf(sel.X)
		if !isNamed(t, "time", "Ticker") && !isNamed(t, "time", "Timer") {
			return true
		}
		stopped[exprKey(g.Fset, sel.X)] = true
		anyStops++
		return true
	})

	for _, s := range sites {
		if fieldOwned[s] {
			continue
		}
		name, ok := assignedTo[s]
		if ok {
			if stopped[name] {
				continue
			}
		} else if anyStops > 0 {
			// Unassigned-form creation (e.g. returned, or passed along):
			// give the benefit of the doubt when the function stops any
			// ticker at all.
			continue
		}
		r.Report(s.Node, "goroutinelife",
			"time.New%s in %s is never stopped here — defer its Stop (or hand it to an owner that does)", s.Detail[3:], n.Name)
	}
}
