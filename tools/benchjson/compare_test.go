package main

import (
	"strings"
	"testing"
)

func snap(benches map[string]result) snapshot {
	return snapshot{Benchmarks: benches}
}

func TestCompareFlagsOnlyRegressionsPastTolerance(t *testing.T) {
	base := snap(map[string]result{
		"BenchmarkFast":   {NsPerOp: 100, AllocsOp: 2},
		"BenchmarkSteady": {NsPerOp: 200, AllocsOp: 0},
		"BenchmarkSlow":   {NsPerOp: 1000, AllocsOp: 5},
	})
	next := snap(map[string]result{
		"BenchmarkFast":   {NsPerOp: 109, AllocsOp: 2},  // +9%: within tolerance
		"BenchmarkSteady": {NsPerOp: 150, AllocsOp: 0},  // faster
		"BenchmarkSlow":   {NsPerOp: 1200, AllocsOp: 7}, // +20%: regression
	})
	rows, regressions := compareSnapshots(base, next, 0.10)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\nrows: %+v", regressions, rows)
	}
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if s := byName["BenchmarkFast"].Status; s != "ok" {
		t.Fatalf("BenchmarkFast status = %q, want ok", s)
	}
	if s := byName["BenchmarkSteady"].Status; s != "ok" {
		t.Fatalf("BenchmarkSteady status = %q, want ok", s)
	}
	slow := byName["BenchmarkSlow"]
	if slow.Status != "regression" || slow.AllocsDelta != 2 {
		t.Fatalf("BenchmarkSlow = %+v, want regression with +2 allocs", slow)
	}
	if slow.DeltaFrac < 0.19 || slow.DeltaFrac > 0.21 {
		t.Fatalf("BenchmarkSlow delta = %g, want ~0.20", slow.DeltaFrac)
	}
}

func TestCompareReportsMissingAndNewWithoutFailing(t *testing.T) {
	base := snap(map[string]result{
		"BenchmarkKept":    {NsPerOp: 100},
		"BenchmarkRemoved": {NsPerOp: 50},
	})
	next := snap(map[string]result{
		"BenchmarkKept":  {NsPerOp: 100},
		"BenchmarkAdded": {NsPerOp: 75},
	})
	rows, regressions := compareSnapshots(base, next, 0.10)
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0", regressions)
	}
	var statuses []string
	for _, r := range rows {
		statuses = append(statuses, r.Name+":"+r.Status)
	}
	joined := strings.Join(statuses, " ")
	for _, want := range []string{"BenchmarkRemoved:missing", "BenchmarkAdded:new", "BenchmarkKept:ok"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("rows %v missing %q", statuses, want)
		}
	}
}

func TestCompareRowsAreSortedAndRendered(t *testing.T) {
	base := snap(map[string]result{"BenchmarkB": {NsPerOp: 10}, "BenchmarkA": {NsPerOp: 10}})
	next := snap(map[string]result{"BenchmarkB": {NsPerOp: 10}, "BenchmarkA": {NsPerOp: 10}})
	rows, _ := compareSnapshots(base, next, 0.10)
	if len(rows) != 2 || rows[0].Name != "BenchmarkA" || rows[1].Name != "BenchmarkB" {
		t.Fatalf("rows not sorted: %+v", rows)
	}
	var b strings.Builder
	writeComparison(&b, rows, 0.10)
	out := b.String()
	if !strings.Contains(out, "BenchmarkA") || !strings.Contains(out, "tolerance: +10%") {
		t.Fatalf("rendered comparison missing content:\n%s", out)
	}
}
