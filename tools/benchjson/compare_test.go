package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(benches map[string]result) snapshot {
	return snapshot{Benchmarks: benches}
}

func TestCompareFlagsOnlyRegressionsPastTolerance(t *testing.T) {
	base := snap(map[string]result{
		"BenchmarkFast":   {NsPerOp: 100, AllocsOp: 2},
		"BenchmarkSteady": {NsPerOp: 200, AllocsOp: 0},
		"BenchmarkSlow":   {NsPerOp: 1000, AllocsOp: 5},
	})
	next := snap(map[string]result{
		"BenchmarkFast":   {NsPerOp: 109, AllocsOp: 2},  // +9%: within tolerance
		"BenchmarkSteady": {NsPerOp: 150, AllocsOp: 0},  // faster
		"BenchmarkSlow":   {NsPerOp: 1200, AllocsOp: 7}, // +20%: regression
	})
	rows, regressions := compareSnapshots(base, next, 0.10, allGates())
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\nrows: %+v", regressions, rows)
	}
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if s := byName["BenchmarkFast"].Status; s != "ok" {
		t.Fatalf("BenchmarkFast status = %q, want ok", s)
	}
	if s := byName["BenchmarkSteady"].Status; s != "ok" {
		t.Fatalf("BenchmarkSteady status = %q, want ok", s)
	}
	slow := byName["BenchmarkSlow"]
	if slow.Status != "regression" || slow.AllocsDelta != 2 {
		t.Fatalf("BenchmarkSlow = %+v, want regression with +2 allocs", slow)
	}
	if slow.DeltaFrac < 0.19 || slow.DeltaFrac > 0.21 {
		t.Fatalf("BenchmarkSlow delta = %g, want ~0.20", slow.DeltaFrac)
	}
}

func TestCompareReportsMissingAndNewWithoutFailing(t *testing.T) {
	base := snap(map[string]result{
		"BenchmarkKept":    {NsPerOp: 100},
		"BenchmarkRemoved": {NsPerOp: 50},
	})
	next := snap(map[string]result{
		"BenchmarkKept":  {NsPerOp: 100},
		"BenchmarkAdded": {NsPerOp: 75},
	})
	rows, regressions := compareSnapshots(base, next, 0.10, allGates())
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0", regressions)
	}
	var statuses []string
	for _, r := range rows {
		statuses = append(statuses, r.Name+":"+r.Status)
	}
	joined := strings.Join(statuses, " ")
	for _, want := range []string{"BenchmarkRemoved:missing", "BenchmarkAdded:new", "BenchmarkKept:ok"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("rows %v missing %q", statuses, want)
		}
	}
}

func TestCompareGatesOnTailMetric(t *testing.T) {
	base := snap(map[string]result{
		// Mean flat, p99 inflates 2×: a tail regression the ns/op gate
		// alone would wave through.
		"BenchmarkTailFat": {NsPerOp: 100, Metrics: map[string]float64{tailMetric: 2.0}},
		// Mean and p99 both improve.
		"BenchmarkTailOK": {NsPerOp: 100, Metrics: map[string]float64{tailMetric: 3.0}},
		// No tail metric on either side: never p99-gated.
		"BenchmarkNoTail": {NsPerOp: 100},
		// Baseline has the metric, candidate dropped it: not gated (no
		// pair to compare), only ns/op applies.
		"BenchmarkTailDropped": {NsPerOp: 100, Metrics: map[string]float64{tailMetric: 2.0}},
	})
	next := snap(map[string]result{
		"BenchmarkTailFat":     {NsPerOp: 101, Metrics: map[string]float64{tailMetric: 4.0}},
		"BenchmarkTailOK":      {NsPerOp: 95, Metrics: map[string]float64{tailMetric: 2.5}},
		"BenchmarkNoTail":      {NsPerOp: 101},
		"BenchmarkTailDropped": {NsPerOp: 101},
	})
	rows, regressions := compareSnapshots(base, next, 0.10, allGates())
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (p99 only)\nrows: %+v", regressions, rows)
	}
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	fat := byName["BenchmarkTailFat"]
	if fat.Status != "regression(p99)" || !fat.hasP99 {
		t.Fatalf("BenchmarkTailFat = %+v, want regression(p99) with hasP99", fat)
	}
	if fat.P99Delta < 0.99 || fat.P99Delta > 1.01 {
		t.Fatalf("BenchmarkTailFat p99 delta = %g, want ~1.0 (2ms→4ms)", fat.P99Delta)
	}
	if s := byName["BenchmarkTailOK"].Status; s != "ok" {
		t.Fatalf("BenchmarkTailOK status = %q, want ok", s)
	}
	for _, name := range []string{"BenchmarkNoTail", "BenchmarkTailDropped"} {
		r := byName[name]
		if r.Status != "ok" || r.hasP99 {
			t.Fatalf("%s = %+v, want ok without p99 gating", name, r)
		}
	}

	// ns/op regression takes precedence over the p99 label when both trip.
	both, n := compareSnapshots(
		snap(map[string]result{"BenchmarkBoth": {NsPerOp: 100, Metrics: map[string]float64{tailMetric: 1.0}}}),
		snap(map[string]result{"BenchmarkBoth": {NsPerOp: 200, Metrics: map[string]float64{tailMetric: 9.0}}}),
		0.10, allGates())
	if n != 1 || both[0].Status != "regression" {
		t.Fatalf("both-gates row = %+v (regressions=%d), want single plain regression", both[0], n)
	}
}

func TestCompareGatesOnAllocs(t *testing.T) {
	base := snap(map[string]result{
		// ns/op flat, allocs/op +50%: a cost regression the time gate
		// alone would wave through.
		"BenchmarkAllocFat": {NsPerOp: 100, AllocsOp: 100},
		// Allocs improve.
		"BenchmarkAllocOK": {NsPerOp: 100, AllocsOp: 100},
		// Zero-alloc baseline: never alloc-gated (no ratio to form), even
		// if the candidate starts allocating.
		"BenchmarkZeroBase": {NsPerOp: 100, AllocsOp: 0},
	})
	next := snap(map[string]result{
		"BenchmarkAllocFat": {NsPerOp: 101, AllocsOp: 150},
		"BenchmarkAllocOK":  {NsPerOp: 101, AllocsOp: 80},
		"BenchmarkZeroBase": {NsPerOp: 101, AllocsOp: 3},
	})
	rows, regressions := compareSnapshots(base, next, 0.10, allGates())
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (allocs only)\nrows: %+v", regressions, rows)
	}
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	fat := byName["BenchmarkAllocFat"]
	if fat.Status != "regression(allocs)" {
		t.Fatalf("BenchmarkAllocFat = %+v, want regression(allocs)", fat)
	}
	if fat.AllocsFrac < 0.49 || fat.AllocsFrac > 0.51 {
		t.Fatalf("BenchmarkAllocFat allocs frac = %g, want ~0.50", fat.AllocsFrac)
	}
	for _, name := range []string{"BenchmarkAllocOK", "BenchmarkZeroBase"} {
		if s := byName[name].Status; s != "ok" {
			t.Fatalf("%s status = %q, want ok", name, s)
		}
	}
}

func TestCompareGatesOnEgressMetric(t *testing.T) {
	base := snap(map[string]result{
		// ns/op flat, per-user egress doubles: a bandwidth regression.
		"BenchmarkEgressFat": {NsPerOp: 100, Metrics: map[string]float64{egressMetric: 90}},
		// Egress improves.
		"BenchmarkEgressOK": {NsPerOp: 100, Metrics: map[string]float64{egressMetric: 90}},
		// Candidate dropped the metric: not gated (no pair to compare).
		"BenchmarkEgressDropped": {NsPerOp: 100, Metrics: map[string]float64{egressMetric: 90}},
	})
	next := snap(map[string]result{
		"BenchmarkEgressFat":     {NsPerOp: 101, Metrics: map[string]float64{egressMetric: 180}},
		"BenchmarkEgressOK":      {NsPerOp: 101, Metrics: map[string]float64{egressMetric: 85}},
		"BenchmarkEgressDropped": {NsPerOp: 101},
	})
	rows, regressions := compareSnapshots(base, next, 0.10, allGates())
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (egress only)\nrows: %+v", regressions, rows)
	}
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	fat := byName["BenchmarkEgressFat"]
	if fat.Status != "regression(bytes/user)" || !fat.hasEgress {
		t.Fatalf("BenchmarkEgressFat = %+v, want regression(bytes/user)", fat)
	}
	if fat.EgressDelta < 0.99 || fat.EgressDelta > 1.01 {
		t.Fatalf("BenchmarkEgressFat egress delta = %g, want ~1.0 (90→180)", fat.EgressDelta)
	}
	if s := byName["BenchmarkEgressOK"].Status; s != "ok" {
		t.Fatalf("BenchmarkEgressOK status = %q, want ok", s)
	}
	r := byName["BenchmarkEgressDropped"]
	if r.Status != "ok" || r.hasEgress {
		t.Fatalf("BenchmarkEgressDropped = %+v, want ok without egress gating", r)
	}

	// ns/op takes precedence over the egress label when both trip.
	both, n := compareSnapshots(
		snap(map[string]result{"BenchmarkBoth": {NsPerOp: 100, Metrics: map[string]float64{egressMetric: 10}}}),
		snap(map[string]result{"BenchmarkBoth": {NsPerOp: 200, Metrics: map[string]float64{egressMetric: 99}}}),
		0.10, allGates())
	if n != 1 || both[0].Status != "regression" {
		t.Fatalf("both-gates row = %+v (regressions=%d), want single plain regression", both[0], n)
	}
}

func TestCompareRowsAreSortedAndRendered(t *testing.T) {
	base := snap(map[string]result{"BenchmarkB": {NsPerOp: 10}, "BenchmarkA": {NsPerOp: 10}})
	next := snap(map[string]result{"BenchmarkB": {NsPerOp: 10}, "BenchmarkA": {NsPerOp: 10}})
	rows, _ := compareSnapshots(base, next, 0.10, allGates())
	if len(rows) != 2 || rows[0].Name != "BenchmarkA" || rows[1].Name != "BenchmarkB" {
		t.Fatalf("rows not sorted: %+v", rows)
	}
	var b strings.Builder
	writeComparison(&b, rows, 0.10)
	out := b.String()
	if !strings.Contains(out, "BenchmarkA") || !strings.Contains(out, "tolerance: +10%") {
		t.Fatalf("rendered comparison missing content:\n%s", out)
	}
}

func TestGateDemotesExcludedClassesToWarnings(t *testing.T) {
	base := snap(map[string]result{
		"BenchmarkSlow":  {NsPerOp: 100, AllocsOp: 10},
		"BenchmarkAlloc": {NsPerOp: 100, AllocsOp: 10},
	})
	next := snap(map[string]result{
		// ns/op doubles but allocs hold: out-of-gate → warning only.
		"BenchmarkSlow": {NsPerOp: 200, AllocsOp: 10},
		// allocs double: in-gate → still a regression.
		"BenchmarkAlloc": {NsPerOp: 100, AllocsOp: 20},
	})
	gate, err := parseGate("allocs,egress")
	if err != nil {
		t.Fatal(err)
	}
	rows, regressions := compareSnapshots(base, next, 0.10, gate)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (only the gated allocs class)", regressions)
	}
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["BenchmarkSlow"]; r.Status != "warn(ns)" {
		t.Fatalf("BenchmarkSlow = %+v, want warn(ns)", r)
	}
	if r := byName["BenchmarkAlloc"]; r.Status != "regression(allocs)" {
		t.Fatalf("BenchmarkAlloc = %+v, want regression(allocs)", r)
	}
}

func TestParseGateRejectsUnknownClass(t *testing.T) {
	if _, err := parseGate("allocs,latency"); err == nil {
		t.Fatal("parseGate accepted unknown class")
	}
	g, err := parseGate("ns")
	if err != nil || !g["ns"] || g["allocs"] {
		t.Fatalf("parseGate(ns) = %v, %v", g, err)
	}
}

func TestMergeUnionsSnapshotsLaterWins(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, s snapshot) string {
		doc, err := json.Marshal(&s)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, doc, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := write("a.json", snapshot{
		GoVersion:  "go1",
		Benchmarks: map[string]result{"BenchmarkA": {NsPerOp: 1}, "BenchmarkShared": {NsPerOp: 10}},
	})
	b := write("b.json", snapshot{
		GoVersion:  "go2",
		Benchmarks: map[string]result{"BenchmarkB": {NsPerOp: 2}, "BenchmarkShared": {NsPerOp: 20}},
	})
	out := filepath.Join(dir, "merged.json")
	if err := runMerge([]string{a, b}, out); err != nil {
		t.Fatal(err)
	}
	m, err := loadSnapshot(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Benchmarks) != 3 || m.GoVersion != "go2" {
		t.Fatalf("merged = %+v, want 3 benchmarks with go2 header", m)
	}
	if m.Benchmarks["BenchmarkShared"].NsPerOp != 20 {
		t.Fatalf("collision winner = %+v, want the later file's row", m.Benchmarks["BenchmarkShared"])
	}
	if err := runMerge([]string{a}, out); err == nil {
		t.Fatal("runMerge accepted a single input")
	}
	if err := runMerge([]string{a, b}, ""); err == nil {
		t.Fatal("runMerge accepted an empty output path")
	}
}
