// Command benchjson runs the repository's benchmarks (`go test -bench
// -benchmem`) and writes the results as a machine-readable BENCH_<n>.json
// snapshot: benchmark name → ns/op, B/op, allocs/op, plus every custom
// b.ReportMetric unit (e.g. the tail gauges "p99-ms"/"p999-ms" of the
// tick benchmarks) in a metrics map. Committing a snapshot per
// optimisation PR gives the repo a diffable performance history without
// any external tooling — compare two snapshots with jq or a spreadsheet.
//
// The output index n is chosen as one past the highest existing
// BENCH_<n>.json in the output directory, so successive runs never
// overwrite a committed baseline.
//
// With -compare/-against the tool diffs two committed snapshots instead of
// running anything: every shared benchmark's ns/op delta is printed along
// with its B/op, allocs and p99 movement, and the exit status is nonzero
// when any ns/op — or any shared "p99-ms" tail metric — exceeds
// -tolerance. Gating on p99 as well as the mean keeps a change honest
// about variability: an optimisation that speeds the average tick while
// fattening its tail is a regression for a real-time loop, whose QoS
// deadline is paid per tick, not on average. Benchmarks that appear on
// only one side are reported (missing/new) but never fail the comparison.
// -gate restricts which regression classes fail the run (ns, p99, allocs,
// egress); excluded classes render as warnings, so a CI box with noisy
// timers can still block on the deterministic classes. With -merge, several
// snapshots are unioned into one document at -o (later files win on
// collisions) — how a composite baseline is assembled from partial runs.
//
// Example:
//
//	go run ./tools/benchjson                      # all packages, default time
//	go run ./tools/benchjson -benchtime 100ms -pkg .
//	go run ./tools/benchjson -compare BENCH_1.json -against BENCH_2.json -tolerance 0.10
//	go run ./tools/benchjson -compare BENCH_4.json -against BENCH_5.json -gate allocs,egress
//	go run ./tools/benchjson -merge cost.json,publish.json -o BENCH_5.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

var (
	pkgFlag   = flag.String("pkg", "./...", "package pattern to benchmark")
	benchFlag = flag.String("bench", ".", "benchmark name pattern (-bench)")
	timeFlag  = flag.String("benchtime", "", "per-benchmark time or iteration count (-benchtime), empty for the go default")
	dirFlag   = flag.String("dir", ".", "directory to write BENCH_<n>.json into")
	outFlag   = flag.String("o", "", "explicit output path (overrides -dir auto-numbering)")
	cmpFlag   = flag.String("compare", "", "compare mode: baseline BENCH_<n>.json (no benchmarks are run)")
	agstFlag  = flag.String("against", "", "compare mode: candidate snapshot to diff against -compare")
	tolFlag   = flag.Float64("tolerance", 0.10, "compare mode: ns/op regression tolerance as a fraction (0.10 = +10%)")
	gateFlag  = flag.String("gate", "ns,p99,allocs,egress", "compare mode: comma list of regression classes that fail the run (ns,p99,allocs,egress); excluded classes are reported as warnings")
	mergeFlag = flag.String("merge", "", "merge mode: comma list of snapshots to union into one document at -o (later files win on collisions)")
)

// result is one benchmark's measurements.
type result struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
	AllocsOp   int64   `json:"allocs_per_op"`
	// Metrics holds every custom b.ReportMetric value keyed by its unit
	// (e.g. "p99-ms", "bytes/tick"). Tail units like "p99-ms" are gated
	// in compare mode alongside ns/op.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// snapshot is the BENCH_<n>.json document.
type snapshot struct {
	// GoVersion and GOMAXPROCS pin the environment the numbers came from.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Date is the run timestamp (RFC 3339, UTC).
	Date string `json:"date"`
	// Benchtime echoes the -benchtime in force ("" = go default).
	Benchtime string `json:"benchtime,omitempty"`
	// Benchmarks maps the benchmark name (CPU suffix stripped) to its
	// measurements.
	Benchmarks map[string]result `json:"benchmarks"`
}

// benchLine matches the head of a `go test -bench` result row, e.g.
//
//	BenchmarkTickLoop-8  1000  1234 ns/op  3.5 p99-ms  56 B/op  7 allocs/op
//
// The measurements after the iteration count are value/unit pairs parsed
// by parsePairs — custom b.ReportMetric units sort between ns/op and
// B/op in go test output, so a fixed ns/op→B/op→allocs/op pattern would
// silently drop B/op on any benchmark that reports a custom metric.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

// parsePairs folds a bench row's value/unit pairs into a result.
func parsePairs(rest string) result {
	var r result
	fields := strings.Fields(rest)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break // not a measurement pair; stop at trailing annotations
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	if *mergeFlag != "" {
		return runMerge(strings.Split(*mergeFlag, ","), *outFlag)
	}
	if *cmpFlag != "" || *agstFlag != "" {
		if *cmpFlag == "" || *agstFlag == "" {
			return fmt.Errorf("compare mode needs both -compare BASELINE and -against CANDIDATE")
		}
		gate, err := parseGate(*gateFlag)
		if err != nil {
			return err
		}
		return runCompare(*cmpFlag, *agstFlag, *tolFlag, gate)
	}
	args := []string{"test", "-run", "^$", "-bench", *benchFlag, "-benchmem"}
	if *timeFlag != "" {
		args = append(args, "-benchtime", *timeFlag)
	}
	args = append(args, *pkgFlag)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchjson: go %v\n", args)
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test: %w", err)
	}

	benches := make(map[string]result)
	for _, line := range bytes.Split(out.Bytes(), []byte("\n")) {
		m := benchLine.FindSubmatch(line)
		if m == nil {
			continue
		}
		r := parsePairs(string(m[3]))
		r.Iterations, _ = strconv.ParseInt(string(m[2]), 10, 64)
		benches[string(m[1])] = r
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark results in go test output (%d bytes)", out.Len())
	}

	snap := snapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		//roialint:ignore tickclock report date stamp for humans, not simulation time
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchtime:  *timeFlag,
		Benchmarks: benches,
	}
	path := *outFlag
	if path == "" {
		path = filepath.Join(*dirFlag, fmt.Sprintf("BENCH_%d.json", nextIndex(*dirFlag)))
	}
	doc, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d benchmarks\n", path, len(names))
	for _, name := range names {
		r := benches[name]
		fmt.Printf("  %-50s %12.1f ns/op %8d allocs/op\n", name, r.NsPerOp, r.AllocsOp)
	}
	return nil
}

// nextIndex returns one past the highest BENCH_<n>.json already in dir.
func nextIndex(dir string) int {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return 1
	}
	max := 0
	re := regexp.MustCompile(`BENCH_(\d+)\.json$`)
	for _, m := range matches {
		if g := re.FindStringSubmatch(m); g != nil {
			if n, err := strconv.Atoi(g[1]); err == nil && n > max {
				max = n
			}
		}
	}
	return max + 1
}
