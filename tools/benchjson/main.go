// Command benchjson runs the repository's benchmarks (`go test -bench
// -benchmem`) and writes the results as a machine-readable BENCH_<n>.json
// snapshot: benchmark name → ns/op, B/op, allocs/op. Committing a snapshot
// per optimisation PR gives the repo a diffable performance history without
// any external tooling — compare two snapshots with jq or a spreadsheet.
//
// The output index n is chosen as one past the highest existing
// BENCH_<n>.json in the output directory, so successive runs never
// overwrite a committed baseline.
//
// With -compare/-against the tool diffs two committed snapshots instead of
// running anything: every shared benchmark's ns/op delta is printed, and
// the exit status is nonzero when any exceeds -tolerance. Benchmarks that
// appear on only one side are reported (missing/new) but never fail the
// comparison.
//
// Example:
//
//	go run ./tools/benchjson                      # all packages, default time
//	go run ./tools/benchjson -benchtime 100ms -pkg .
//	go run ./tools/benchjson -compare BENCH_1.json -against BENCH_2.json -tolerance 0.10
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"
)

var (
	pkgFlag   = flag.String("pkg", "./...", "package pattern to benchmark")
	benchFlag = flag.String("bench", ".", "benchmark name pattern (-bench)")
	timeFlag  = flag.String("benchtime", "", "per-benchmark time or iteration count (-benchtime), empty for the go default")
	dirFlag   = flag.String("dir", ".", "directory to write BENCH_<n>.json into")
	outFlag   = flag.String("o", "", "explicit output path (overrides -dir auto-numbering)")
	cmpFlag   = flag.String("compare", "", "compare mode: baseline BENCH_<n>.json (no benchmarks are run)")
	agstFlag  = flag.String("against", "", "compare mode: candidate snapshot to diff against -compare")
	tolFlag   = flag.Float64("tolerance", 0.10, "compare mode: ns/op regression tolerance as a fraction (0.10 = +10%)")
)

// result is one benchmark's measurements.
type result struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
	AllocsOp   int64   `json:"allocs_per_op"`
}

// snapshot is the BENCH_<n>.json document.
type snapshot struct {
	// GoVersion and GOMAXPROCS pin the environment the numbers came from.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Date is the run timestamp (RFC 3339, UTC).
	Date string `json:"date"`
	// Benchtime echoes the -benchtime in force ("" = go default).
	Benchtime string `json:"benchtime,omitempty"`
	// Benchmarks maps the benchmark name (CPU suffix stripped) to its
	// measurements.
	Benchmarks map[string]result `json:"benchmarks"`
}

// benchLine matches `go test -bench -benchmem` result rows, e.g.
//
//	BenchmarkTickLoop-8  1000  1234 ns/op  56 B/op  7 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	if *cmpFlag != "" || *agstFlag != "" {
		if *cmpFlag == "" || *agstFlag == "" {
			return fmt.Errorf("compare mode needs both -compare BASELINE and -against CANDIDATE")
		}
		return runCompare(*cmpFlag, *agstFlag, *tolFlag)
	}
	args := []string{"test", "-run", "^$", "-bench", *benchFlag, "-benchmem"}
	if *timeFlag != "" {
		args = append(args, "-benchtime", *timeFlag)
	}
	args = append(args, *pkgFlag)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchjson: go %v\n", args)
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test: %w", err)
	}

	benches := make(map[string]result)
	for _, line := range bytes.Split(out.Bytes(), []byte("\n")) {
		m := benchLine.FindSubmatch(line)
		if m == nil {
			continue
		}
		var r result
		r.Iterations, _ = strconv.ParseInt(string(m[2]), 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(string(m[3]), 64)
		if len(m[4]) > 0 {
			r.BytesPerOp, _ = strconv.ParseFloat(string(m[4]), 64)
		}
		if len(m[5]) > 0 {
			r.AllocsOp, _ = strconv.ParseInt(string(m[5]), 10, 64)
		}
		benches[string(m[1])] = r
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark results in go test output (%d bytes)", out.Len())
	}

	snap := snapshot{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		//roialint:ignore tickclock report date stamp for humans, not simulation time
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchtime:  *timeFlag,
		Benchmarks: benches,
	}
	path := *outFlag
	if path == "" {
		path = filepath.Join(*dirFlag, fmt.Sprintf("BENCH_%d.json", nextIndex(*dirFlag)))
	}
	doc, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d benchmarks\n", path, len(names))
	for _, name := range names {
		r := benches[name]
		fmt.Printf("  %-50s %12.1f ns/op %8d allocs/op\n", name, r.NsPerOp, r.AllocsOp)
	}
	return nil
}

// nextIndex returns one past the highest BENCH_<n>.json already in dir.
func nextIndex(dir string) int {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return 1
	}
	max := 0
	re := regexp.MustCompile(`BENCH_(\d+)\.json$`)
	for _, m := range matches {
		if g := re.FindStringSubmatch(m); g != nil {
			if n, err := strconv.Atoi(g[1]); err == nil && n > max {
				max = n
			}
		}
	}
	return max + 1
}
