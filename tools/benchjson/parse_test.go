package main

import "testing"

func TestParsePairsCapturesBenchmemAroundCustomMetrics(t *testing.T) {
	// go test emits custom ReportMetric units (sorted by name) BETWEEN
	// ns/op and B/op, so the parser must treat the row as generic
	// value/unit pairs or -benchmem columns silently read as zero.
	line := "BenchmarkRealServerTick/users=50-8 \t 100\t  84210 ns/op\t 3.1 measured-ms\t 2.8 model-ms\t 10224 B/op\t 120 allocs/op"
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("benchLine did not match %q", line)
	}
	if m[1] != "BenchmarkRealServerTick/users=50" {
		t.Fatalf("name = %q", m[1])
	}
	r := parsePairs(m[3])
	if r.NsPerOp != 84210 {
		t.Fatalf("ns/op = %g, want 84210", r.NsPerOp)
	}
	if r.BytesPerOp != 10224 {
		t.Fatalf("B/op = %g, want 10224 (custom metrics must not shadow -benchmem)", r.BytesPerOp)
	}
	if r.AllocsOp != 120 {
		t.Fatalf("allocs/op = %d, want 120", r.AllocsOp)
	}
	if r.Metrics["measured-ms"] != 3.1 || r.Metrics["model-ms"] != 2.8 {
		t.Fatalf("metrics = %v, want measured-ms=3.1 model-ms=2.8", r.Metrics)
	}
}

func TestParsePairsPlainRow(t *testing.T) {
	r := parsePairs("1234.5 ns/op\t 56 B/op\t 7 allocs/op")
	if r.NsPerOp != 1234.5 || r.BytesPerOp != 56 || r.AllocsOp != 7 {
		t.Fatalf("parsed = %+v", r)
	}
	if r.Metrics != nil {
		t.Fatalf("unexpected metrics: %v", r.Metrics)
	}
}
