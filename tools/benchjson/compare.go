package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// diffRow is one benchmark's baseline-vs-candidate comparison.
type diffRow struct {
	Name           string
	BaseNs, NewNs  float64
	DeltaFrac      float64 // (new-base)/base; 0 when base is 0
	AllocsDelta    int64
	Status         string // "ok", "regression", "missing", "new"
	missingOrExtra bool
}

// compareSnapshots diffs two snapshots benchmark by benchmark. A benchmark
// regresses when its candidate ns/op exceeds the baseline by more than
// tolerance (a fraction, e.g. 0.10 = +10%). Benchmarks present on only one
// side are reported as "missing"/"new" but never count as regressions —
// renames and additions are routine, silent disappearance is visible.
func compareSnapshots(base, next snapshot, tolerance float64) (rows []diffRow, regressions int) {
	names := make([]string, 0, len(base.Benchmarks)+len(next.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	for name := range next.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, inBase := base.Benchmarks[name]
		n, inNext := next.Benchmarks[name]
		switch {
		case !inNext:
			rows = append(rows, diffRow{Name: name, BaseNs: b.NsPerOp, Status: "missing", missingOrExtra: true})
		case !inBase:
			rows = append(rows, diffRow{Name: name, NewNs: n.NsPerOp, Status: "new", missingOrExtra: true})
		default:
			row := diffRow{
				Name: name, BaseNs: b.NsPerOp, NewNs: n.NsPerOp,
				AllocsDelta: n.AllocsOp - b.AllocsOp,
				Status:      "ok",
			}
			if b.NsPerOp > 0 {
				row.DeltaFrac = (n.NsPerOp - b.NsPerOp) / b.NsPerOp
			}
			if row.DeltaFrac > tolerance {
				row.Status = "regression"
				regressions++
			}
			rows = append(rows, row)
		}
	}
	return rows, regressions
}

// writeComparison renders the diff as an aligned table.
func writeComparison(w io.Writer, rows []diffRow, tolerance float64) {
	fmt.Fprintf(w, "%-50s %12s %12s %8s %8s  %s\n", "benchmark", "base ns/op", "new ns/op", "delta", "allocs", "status")
	for _, r := range rows {
		if r.missingOrExtra {
			fmt.Fprintf(w, "%-50s %12.1f %12.1f %8s %8s  %s\n", r.Name, r.BaseNs, r.NewNs, "-", "-", r.Status)
			continue
		}
		fmt.Fprintf(w, "%-50s %12.1f %12.1f %+7.1f%% %+8d  %s\n",
			r.Name, r.BaseNs, r.NewNs, r.DeltaFrac*100, r.AllocsDelta, r.Status)
	}
	fmt.Fprintf(w, "tolerance: +%.0f%% ns/op\n", tolerance*100)
}

// loadSnapshot reads one BENCH_<n>.json document.
func loadSnapshot(path string) (snapshot, error) {
	var s snapshot
	doc, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(doc, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return s, nil
}

// runCompare is the -compare mode entry point: nonzero exit (via error)
// when any shared benchmark regressed past the tolerance.
func runCompare(basePath, nextPath string, tolerance float64) error {
	base, err := loadSnapshot(basePath)
	if err != nil {
		return err
	}
	next, err := loadSnapshot(nextPath)
	if err != nil {
		return err
	}
	rows, regressions := compareSnapshots(base, next, tolerance)
	writeComparison(os.Stdout, rows, tolerance)
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than +%.0f%% vs %s", regressions, tolerance*100, basePath)
	}
	return nil
}
