package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// diffRow is one benchmark's baseline-vs-candidate comparison.
type diffRow struct {
	Name           string
	BaseNs, NewNs  float64
	DeltaFrac      float64 // (new-base)/base; 0 when base is 0
	BytesDelta     float64
	AllocsDelta    int64
	AllocsFrac     float64 // relative allocs/op movement; 0 when base is 0
	P99Delta       float64 // relative movement of the "p99-ms" tail metric
	hasP99         bool    // both sides report p99-ms
	EgressDelta    float64 // relative movement of the "bytes/user/tick" metric
	hasEgress      bool    // both sides report bytes/user/tick
	Status         string  // "ok", "regression", "missing", "new"
	missingOrExtra bool
}

// tailMetric is the custom-metric unit gated in compare mode alongside
// ns/op: the windowed p99 of the per-tick wall time reported by the tail
// benchmarks (see bench_test.go and roiabench -fig variability).
const tailMetric = "p99-ms"

// egressMetric is the second gated custom metric: framed wire bytes sent
// per user per tick, reported by the cost harness (roiabench -fig cost).
// A protocol or interest-management change that silently fattens every
// user's update stream regresses this even when tick time is unchanged.
const egressMetric = "bytes/user/tick"

// gateSet selects which regression classes fail a comparison. Keys are the
// class names accepted by -gate: "ns" (ns/op), "p99" (the p99-ms tail
// metric), "allocs" (allocs/op) and "egress" (bytes/user/tick). A class
// outside the set still shows in the table — as "warn(<class>)" — but does
// not fail the run. Machine-noise-sensitive classes (ns/op on a shared CI
// box) can thus be demoted to warnings while the deterministic ones
// (allocations, wire bytes) stay blocking.
type gateSet map[string]bool

// gateClasses is every known -gate class, in check order.
var gateClasses = []string{"ns", "p99", "allocs", "egress"}

// allGates returns a gateSet with every class blocking (the default).
func allGates() gateSet {
	g := make(gateSet, len(gateClasses))
	for _, c := range gateClasses {
		g[c] = true
	}
	return g
}

// parseGate parses a -gate value: a comma-separated subset of gateClasses.
func parseGate(s string) (gateSet, error) {
	known := allGates()
	g := make(gateSet)
	for _, c := range strings.Split(s, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if !known[c] {
			return nil, fmt.Errorf("unknown -gate class %q (known: %s)", c, strings.Join(gateClasses, ","))
		}
		g[c] = true
	}
	return g, nil
}

// compareSnapshots diffs two snapshots benchmark by benchmark. A benchmark
// regresses when its candidate ns/op — or its "p99-ms" tail metric, its
// allocs/op, or its "bytes/user/tick" egress metric, when the baseline
// reports a nonzero value — exceeds the baseline by more than tolerance (a
// fraction, e.g. 0.10 = +10%). Gating the tail as well as the mean keeps a
// faster-on-average change from hiding a fatter tick-time tail; gating
// allocations and per-user egress keeps one from hiding a costlier tick.
// The gate set picks which of those classes actually fail the comparison;
// out-of-gate exceedances render as "warn(<class>)" and do not count.
// Benchmarks present on only one side are reported as "missing"/"new" but
// never count as regressions — renames and additions are routine, silent
// disappearance is visible.
func compareSnapshots(base, next snapshot, tolerance float64, gate gateSet) (rows []diffRow, regressions int) {
	names := make([]string, 0, len(base.Benchmarks)+len(next.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	for name := range next.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, inBase := base.Benchmarks[name]
		n, inNext := next.Benchmarks[name]
		switch {
		case !inNext:
			rows = append(rows, diffRow{Name: name, BaseNs: b.NsPerOp, Status: "missing", missingOrExtra: true})
		case !inBase:
			rows = append(rows, diffRow{Name: name, NewNs: n.NsPerOp, Status: "new", missingOrExtra: true})
		default:
			row := diffRow{
				Name: name, BaseNs: b.NsPerOp, NewNs: n.NsPerOp,
				BytesDelta:  n.BytesPerOp - b.BytesPerOp,
				AllocsDelta: n.AllocsOp - b.AllocsOp,
				Status:      "ok",
			}
			if b.NsPerOp > 0 {
				row.DeltaFrac = (n.NsPerOp - b.NsPerOp) / b.NsPerOp
			}
			if b.AllocsOp > 0 {
				row.AllocsFrac = float64(n.AllocsOp-b.AllocsOp) / float64(b.AllocsOp)
			}
			if bp, ok := b.Metrics[tailMetric]; ok && bp > 0 {
				if np, ok := n.Metrics[tailMetric]; ok {
					row.hasP99 = true
					row.P99Delta = (np - bp) / bp
				}
			}
			if be, ok := b.Metrics[egressMetric]; ok && be > 0 {
				if ne, ok := n.Metrics[egressMetric]; ok {
					row.hasEgress = true
					row.EgressDelta = (ne - be) / be
				}
			}
			checks := []struct {
				class, status string
				hit           bool
			}{
				{"ns", "regression", row.DeltaFrac > tolerance},
				{"p99", "regression(p99)", row.hasP99 && row.P99Delta > tolerance},
				{"allocs", "regression(allocs)", row.AllocsFrac > tolerance},
				{"egress", "regression(bytes/user)", row.hasEgress && row.EgressDelta > tolerance},
			}
			for _, c := range checks {
				if !c.hit {
					continue
				}
				if gate[c.class] {
					row.Status = c.status
					regressions++
					break
				}
				if row.Status == "ok" {
					row.Status = "warn(" + c.class + ")"
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, regressions
}

// writeComparison renders the diff as an aligned table.
func writeComparison(w io.Writer, rows []diffRow, tolerance float64) {
	fmt.Fprintf(w, "%-50s %12s %12s %8s %8s %10s %8s  %s\n",
		"benchmark", "base ns/op", "new ns/op", "delta", "p99", "B/op", "allocs", "status")
	for _, r := range rows {
		if r.missingOrExtra {
			fmt.Fprintf(w, "%-50s %12.1f %12.1f %8s %8s %10s %8s  %s\n",
				r.Name, r.BaseNs, r.NewNs, "-", "-", "-", "-", r.Status)
			continue
		}
		p99 := "-"
		if r.hasP99 {
			p99 = fmt.Sprintf("%+.1f%%", r.P99Delta*100)
		}
		fmt.Fprintf(w, "%-50s %12.1f %12.1f %+7.1f%% %8s %+10.0f %+8d  %s\n",
			r.Name, r.BaseNs, r.NewNs, r.DeltaFrac*100, p99, r.BytesDelta, r.AllocsDelta, r.Status)
	}
	fmt.Fprintf(w, "tolerance: +%.0f%% ns/op, %s, allocs/op, and %s\n", tolerance*100, tailMetric, egressMetric)
}

// loadSnapshot reads one BENCH_<n>.json document.
func loadSnapshot(path string) (snapshot, error) {
	var s snapshot
	doc, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(doc, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return s, nil
}

// runCompare is the -compare mode entry point: nonzero exit (via error)
// when any shared benchmark regressed past the tolerance in a gated class.
func runCompare(basePath, nextPath string, tolerance float64, gate gateSet) error {
	base, err := loadSnapshot(basePath)
	if err != nil {
		return err
	}
	next, err := loadSnapshot(nextPath)
	if err != nil {
		return err
	}
	rows, regressions := compareSnapshots(base, next, tolerance, gate)
	writeComparison(os.Stdout, rows, tolerance)
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than +%.0f%% vs %s", regressions, tolerance*100, basePath)
	}
	return nil
}

// runMerge unions several snapshots into one document at outPath. Later
// files win on benchmark-name collisions; the environment header comes from
// the last file (the most recent run). This is how a composite baseline is
// assembled from tools that each emit a partial snapshot — e.g. the cost
// harness's scenario metrics plus a `go test -bench` allocation benchmark.
func runMerge(paths []string, outPath string) error {
	if outPath == "" {
		return fmt.Errorf("-merge needs an explicit output path (-o)")
	}
	if len(paths) < 2 {
		return fmt.Errorf("-merge needs at least two snapshots, got %d", len(paths))
	}
	merged := snapshot{Benchmarks: make(map[string]result)}
	for _, p := range paths {
		s, err := loadSnapshot(p)
		if err != nil {
			return err
		}
		merged.GoVersion, merged.GOOS, merged.GOARCH = s.GoVersion, s.GOOS, s.GOARCH
		merged.GOMAXPROCS, merged.Date, merged.Benchtime = s.GOMAXPROCS, s.Date, s.Benchtime
		for name, r := range s.Benchmarks {
			merged.Benchmarks[name] = r
		}
	}
	doc, err := json.MarshalIndent(&merged, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: merged %d snapshots, %d benchmarks\n", outPath, len(paths), len(merged.Benchmarks))
	return nil
}
