// Command paramtune searches the coefficient space of the RTFDemo default
// parameter set so the resulting profile reproduces the paper's anchor
// numbers (Section V-A): n_max(1) = 235 at U = 40 ms, l_max(c=0.15) = 8,
// l_max(c=0.05) = 48 and l_max(c=1.0) = 1.
//
// It is a maintenance tool: its output is pasted into params.RTFDemo and
// locked in by the anchor tests in internal/params. Run it only when the
// anchor targets or the curve shapes change.
package main

import (
	"flag"
	"fmt"
	"math"

	"roia/internal/model"
	"roia/internal/params"
)

var (
	verify = flag.Bool("verify", false, "verify the locked-in params.RTFDemo profile instead of searching")
	scan   = flag.Bool("scan", false, "scan scale multipliers of the forwarding curves around params.RTFDemo")
)

// makeSet assembles a candidate RTFDemo profile. uaConst is the free knob
// solved so that n_max(1) = 235; aLin and aQuad shape the growth of the
// per-active-user cost with the zone's user count; fIntercept/fSlope shape
// the forwarded-input (replication) overhead. Together those govern how the
// marginal benefit of each replica decays, i.e. l_max.
func makeSet(uaConst, aLin, aQuad, fIntercept, fSlope float64) *params.Set {
	return &params.Set{
		Name:    "rtfdemo-fps",
		UADeser: params.Linear(0.005, 0.00004),
		UA:      params.Quadratic(uaConst, 0.55*aLin, 0.45*aQuad),
		FADeser: params.Linear(0.4*fIntercept, 0.4*fSlope),
		FA:      params.Linear(0.6*fIntercept, 0.6*fSlope),
		NPC:     params.Linear(0.02, 0.00005),
		AOI:     params.Quadratic(0.006, 0.45*aLin, 0.55*aQuad),
		SU:      params.Linear(0.012, 0.00008),
		MigIni:  params.Linear(0.5, 0.005),
		MigRcv:  params.Linear(0.33, 0.005),
	}
}

func lmax(s *params.Set, c float64) int {
	mdl := &model.Model{Cost: s, U: 40, C: c}
	l, _ := mdl.MaxReplicas(0)
	return l
}

func main() {
	flag.Parse()
	if *verify {
		report(params.RTFDemo())
		return
	}
	if *scan {
		base := params.RTFDemo()
		f0d, f0 := base.FADeser.Coeffs[0], base.FA.Coeffs[0]
		for sc := 0.985; sc <= 1.015; sc += 0.0005 {
			s := params.RTFDemo()
			s.FADeser.Coeffs[0] = f0d * sc
			s.FA.Coeffs[0] = f0 * sc
			mdl := &model.Model{Cost: s, U: 40, C: 0.15}
			n1, _ := mdl.MaxUsers(1, 0)
			fmt.Printf("scale=%.4f fad0=%.10f fa0=%.10f n1=%d l15=%d l05=%d l100=%d\n",
				sc, s.FADeser.Coeffs[0], s.FA.Coeffs[0], n1, lmax(s, 0.15), lmax(s, 0.05), lmax(s, 1.0))
		}
		return
	}
	// Solve uaConst so that T(1, 236) >= 40 > T(1, 235): bisect on the
	// constant term of t_ua. Returns a negative value when no non-negative
	// constant can reach the anchor (aLin/aQuad already too expensive).
	solveUA := func(aLin, aQuad, fi, fs float64) float64 {
		s := makeSet(0, aLin, aQuad, fi, fs)
		mdl := &model.Model{Cost: s, U: 40, C: 0.15}
		if n, _ := mdl.MaxUsers(1, 0); n < 236 {
			return -1
		}
		lo, hi := 0.0, 0.2
		for i := 0; i < 100; i++ {
			mid := (lo + hi) / 2
			s := makeSet(mid, aLin, aQuad, fi, fs)
			mdl := &model.Model{Cost: s, U: 40, C: 0.15}
			if n, _ := mdl.MaxUsers(1, 0); n >= 236 {
				lo = mid
			} else {
				hi = mid
			}
		}
		return hi
	}

	best := math.MaxFloat64
	var bestFI, bestFS, bestUA, bestAL, bestAQ float64
	for _, aQuad := range []float64{0, 2e-8, 5e-8, 1e-7, 2e-7} {
		for aLin := 1e-5; aLin <= 8e-4; aLin *= 1.15 {
			for fi := 0.0002; fi <= 0.03; fi *= 1.12 {
				for _, fs := range []float64{0, 5e-7, 2e-6, 8e-6} {
					ua := solveUA(aLin, aQuad, fi, fs)
					if ua < 0 {
						continue
					}
					s := makeSet(ua, aLin, aQuad, fi, fs)
					mdl := &model.Model{Cost: s, U: 40, C: 0.15}
					n1, _ := mdl.MaxUsers(1, 0)
					if n1 != 235 {
						continue
					}
					l15 := lmax(s, 0.15)
					if l15 != 8 {
						continue
					}
					l05 := lmax(s, 0.05)
					l100 := lmax(s, 1.0)
					score := math.Abs(float64(l05-48)) + math.Abs(float64(l100-1))*100
					if score < best {
						best, bestFI, bestFS, bestUA, bestAL, bestAQ = score, fi, fs, ua, aLin, aQuad
						fmt.Printf("score=%.1f aL=%.6g aQ=%.6g fi=%.6g fs=%.6g ua0=%.8f l05=%d l100=%d\n",
							score, aLin, aQuad, fi, fs, ua, l05, l100)
						if score == 0 {
							report(s)
							return
						}
					}
				}
			}
		}
	}
	fmt.Printf("\nbest: aL=%.8g aQ=%.8g fi=%.8g fs=%.8g ua0=%.10f (score %.1f)\n",
		bestAL, bestAQ, bestFI, bestFS, bestUA, best)
	report(makeSet(bestUA, bestAL, bestAQ, bestFI, bestFS))
}

func report(s *params.Set) {
	fmt.Println("\n--- final profile ---")
	out, _ := s.Encode()
	fmt.Println(string(out))
	mdl := &model.Model{Cost: s, U: 40, C: 0.15}
	for _, c := range []float64{0.05, 0.15, 0.5, 1.0} {
		fmt.Printf("l_max(c=%.2f) = %d\n", c, lmax(s, c))
	}
	n1, _ := mdl.MaxUsers(1, 0)
	fmt.Printf("n_max(1)=%d trigger80=%d\n", n1, model.ReplicationTrigger(n1, 0.8))
	for l := 1; l <= 8; l++ {
		n, _ := mdl.MaxUsers(l, 0)
		fmt.Printf("n_max(%d)=%d\n", l, n)
	}
	fmt.Printf("x_ini(T=35ms base,180u)=%d x_rcv(T=15ms base,80u)=%d\n",
		mdl.MaxMigrationsIni(1, 180, 0, migA(mdl, 1, 180, 35)),
		mdl.MaxMigrationsRcv(1, 80, 0, migA(mdl, 1, 80, 15)))
}

// migA finds an active-entity count whose Eq.(4) tick time is close to the
// target, for reproducing the worked example.
func migA(mdl *model.Model, l, n int, target float64) int {
	bestA, bestD := 0, math.MaxFloat64
	for a := 0; a <= n; a++ {
		d := math.Abs(mdl.TickTimeUneven(l, n, 0, a) - target)
		if d < bestD {
			bestD, bestA = d, a
		}
	}
	return bestA
}
